//! # simlint — project-specific static analysis
//!
//! Rules clippy cannot express, enforced over the workspace sources (see
//! DESIGN.md "Correctness & determinism policy"):
//!
//! | rule | scope | what it bans |
//! |---|---|---|
//! | `hash-collections` | sim crates | `HashMap`/`HashSet` (iteration order is unspecified; use `BTreeMap`/`BTreeSet` or `Vec`-indexed storage) |
//! | `wall-clock` | sim crates | `Instant::now`, `SystemTime`, `thread_rng`, `rand::` (hidden nondeterminism); `obs/src/span.rs` is the one sanctioned span-timer surface and is exempt |
//! | `panic` | library crates | `.unwrap()` / `.expect(` outside `#[cfg(test)]` (library code returns typed errors or documents the invariant with an allow) |
//! | `no-unwrap-sim` | sim crates | `.unwrap()` / `.expect(` in simulation hot paths, even with a `panic` allow — sim code degrades via `faults::SimError` or infallible constructions; a cold-path exception needs its own `allow(no-unwrap-sim)` |
//! | `index-literal` | sim crates | literal indexing `xs[0]` without a bound-justifying comment on the same or preceding line |
//! | `unit-suffix` | sim crates | `pub fn` parameters of type `f64` with a time/rate/size-flavoured name but no unit suffix (`_s`, `_us`, `_pps`, `_gbps`, `_bytes`, …) |
//! | `thread-spawn` | sim crates | raw `thread::spawn` / `thread::scope` outside `desim::par` (ad-hoc threading breaks the ordered-results determinism contract; use `desim::par::par_map`) |
//!
//! Test modules (`#[cfg(test)]`), doc comments, strings, `tests/`,
//! `benches/`, `examples/` and binary targets are exempt from `panic` and
//! `index-literal`; determinism rules apply to library *and* test code of
//! the sim crates (a nondeterministic test is still a flaky test).
//!
//! ## Allowlist
//!
//! A finding is suppressed by a directive comment on the same line or the
//! line directly above:
//!
//! ```text
//! let t = a + b; // simlint: allow(panic) — checked-overflow guard, documented
//! ```

use std::fmt;
use std::path::{Path, PathBuf};

/// The lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `HashMap`/`HashSet` in simulation logic.
    HashCollections,
    /// Wall-clock or ambient randomness in simulation logic.
    WallClock,
    /// `.unwrap()` / `.expect(` in library code.
    Panic,
    /// `.unwrap()` / `.expect(` in simulation-crate code, independent of any
    /// `panic` allow: the fault-plane hardening contract is that sim crates
    /// degrade through `faults::SimError`, not aborts.
    NoUnwrapSim,
    /// Literal index without a bound comment.
    IndexLiteral,
    /// Public `f64` parameter with a dimensioned name but no unit suffix.
    UnitSuffix,
    /// Raw `thread::spawn`/`thread::scope` outside `desim::par`.
    ThreadSpawn,
}

impl Rule {
    /// The name used in `simlint: allow(<name>)` directives and reports.
    pub fn name(self) -> &'static str {
        match self {
            Rule::HashCollections => "hash-collections",
            Rule::WallClock => "wall-clock",
            Rule::Panic => "panic",
            Rule::NoUnwrapSim => "no-unwrap-sim",
            Rule::IndexLiteral => "index-literal",
            Rule::UnitSuffix => "unit-suffix",
            Rule::ThreadSpawn => "thread-spawn",
        }
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Which rule families apply to a file.
#[derive(Debug, Clone, Copy)]
pub struct Scope {
    /// Determinism rules (`hash-collections`, `index-literal`).
    pub determinism: bool,
    /// Wall-clock discipline (`wall-clock`). Tracks `determinism` everywhere
    /// except `obs/src/span.rs`, the sanctioned span-timer surface (the
    /// wall-clock analogue of `desim::par` for `thread-spawn`).
    pub wall_clock: bool,
    /// Panic discipline (`panic`).
    pub panic_discipline: bool,
    /// Unwrap discipline in simulation crates (`no-unwrap-sim`): stricter
    /// than `panic` — an `allow(panic)` does not satisfy it.
    pub no_unwrap: bool,
    /// Unit-suffix naming on public signatures.
    pub unit_suffix: bool,
    /// Thread-spawn discipline (`thread-spawn`): `desim::par` is the only
    /// sanctioned fork-join surface in the simulation crates.
    pub thread_spawn: bool,
}

/// Crates whose *logic* must be deterministic and dimensionally sound.
/// `obs` is included: instrumentation that perturbs determinism would
/// invalidate the traces it exists to produce.
pub const SIM_CRATES: &[&str] = &[
    "desim",
    "netsim",
    "fluid",
    "protocols",
    "models",
    "obs",
    "faults",
];
/// Crates held to library panic discipline.
pub const LIB_CRATES: &[&str] = &[
    "desim",
    "netsim",
    "fluid",
    "protocols",
    "models",
    "obs",
    "faults",
    "workload",
    "control",
];

/// Scope for a workspace-relative source path, `None` if the file is not
/// linted (bins, benches, fixtures, generated code).
pub fn scope_for(rel: &Path) -> Option<Scope> {
    let mut comps = rel.components().map(|c| c.as_os_str().to_string_lossy());
    if comps.next().as_deref() != Some("crates") {
        return None;
    }
    let krate = comps.next()?.to_string();
    // Only library sources: crates/<name>/src/**, excluding bin targets.
    if comps.next().as_deref() != Some("src") {
        return None;
    }
    if comps.next().as_deref() == Some("bin") {
        return None;
    }
    if krate == "xtask" {
        return None;
    }
    let is_par_executor = rel == Path::new("crates/desim/src/par.rs");
    let is_span_timer = rel == Path::new("crates/obs/src/span.rs");
    let sim = SIM_CRATES.contains(&krate.as_str());
    Some(Scope {
        determinism: sim,
        wall_clock: sim && !is_span_timer,
        panic_discipline: LIB_CRATES.contains(&krate.as_str()),
        no_unwrap: sim,
        unit_suffix: sim,
        thread_spawn: sim && !is_par_executor,
    })
}

/// A source line after comment/string scrubbing.
struct ScrubbedLine {
    /// Code with comments and string-literal contents blanked out.
    code: String,
    /// Text of any `//` comment on the line (empty if none).
    comment: String,
}

/// Blank out string literals, char literals and comments, preserving column
/// positions, and capture the trailing `//` comment text per line.
///
/// This is a lexer-lite: good enough for the token-level patterns the rules
/// use, not a full Rust parser. Raw strings are handled for the common
/// `r"…"` / `r#"…"#` forms.
fn scrub(source: &str) -> Vec<ScrubbedLine> {
    let mut out = Vec::new();
    let mut in_block_comment = 0usize;
    // Hash count of an open multi-line raw string (`r#"…"#` spanning lines).
    let mut in_raw_string: Option<usize> = None;
    for raw in source.lines() {
        let bytes: Vec<char> = raw.chars().collect();
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i];
            let next = bytes.get(i + 1).copied();
            if let Some(hashes) = in_raw_string {
                // Inside a multi-line raw string: blank until `"###…` closes it.
                if c == '"' && (0..hashes).all(|k| bytes.get(i + 1 + k) == Some(&'#')) {
                    in_raw_string = None;
                    code.push('"');
                    i += 1 + hashes;
                } else {
                    code.push(' ');
                    i += 1;
                }
                continue;
            }
            if in_block_comment > 0 {
                if c == '*' && next == Some('/') {
                    in_block_comment -= 1;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    in_block_comment += 1;
                    i += 2;
                } else {
                    i += 1;
                }
                code.push(' ');
                continue;
            }
            match c {
                '/' if next == Some('/') => {
                    comment = bytes[i..].iter().collect();
                    break;
                }
                '/' if next == Some('*') => {
                    in_block_comment += 1;
                    i += 2;
                    code.push(' ');
                }
                '"' => {
                    code.push('"');
                    i += 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            '\\' => i += 2,
                            '"' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    code.push('"');
                }
                'r' if next == Some('"') || (next == Some('#')) => {
                    // Possible raw string r"…" or r#"…"#; count hashes.
                    let mut j = i + 1;
                    let mut hashes = 0;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') {
                        // Scan for the closing quote + hashes; if the raw
                        // string does not close on this line, carry the open
                        // state into the following lines.
                        let closing: String = std::iter::once('"')
                            .chain(std::iter::repeat_n('#', hashes))
                            .collect();
                        let rest: String = bytes[j + 1..].iter().collect();
                        if let Some(end) = rest.find(&closing) {
                            code.push_str("r\"\"");
                            i = j + 1 + end + closing.len();
                        } else {
                            code.push_str("r\"\"");
                            in_raw_string = Some(hashes);
                            i = bytes.len();
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
                '\'' => {
                    // Char literal or lifetime; skip 'x' / '\n' forms.
                    if next == Some('\\') && bytes.get(i + 3) == Some(&'\'') {
                        code.push_str("' '");
                        i += 4;
                    } else if bytes.get(i + 2) == Some(&'\'') {
                        code.push_str("' '");
                        i += 3;
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
                c => {
                    code.push(c);
                    i += 1;
                }
            }
        }
        out.push(ScrubbedLine { code, comment });
    }
    out
}

/// Does `comment` carry a `simlint: allow(...)` directive naming `rule`?
fn allows(comment: &str, rule: Rule) -> bool {
    let Some(pos) = comment.find("simlint: allow(") else {
        return false;
    };
    let rest = &comment[pos + "simlint: allow(".len()..];
    let Some(end) = rest.find(')') else {
        return false;
    };
    rest[..end].split(',').any(|r| r.trim() == rule.name())
}

/// Track `#[cfg(test)]`-gated regions: returns per-line "is test code".
fn test_mask(lines: &[ScrubbedLine]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut depth: i64 = 0;
    let mut test_until_depth: Option<i64> = None;
    let mut pending_cfg_test = false;
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        if test_until_depth.is_some() {
            mask[idx] = true;
        }
        if test_until_depth.is_none() && code.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        }
        // The item following #[cfg(test)] (mod/fn/impl/use) is test-only.
        // We only track block items (mod/fn/impl); a `use` is harmless.
        if pending_cfg_test
            && (code.trim_start().starts_with("mod ")
                || code.trim_start().starts_with("pub mod ")
                || code.trim_start().starts_with("fn ")
                || code.trim_start().starts_with("pub fn ")
                || code.trim_start().starts_with("impl "))
        {
            mask[idx] = true;
            test_until_depth = Some(depth);
            pending_cfg_test = false;
        }
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if let Some(d) = test_until_depth {
                        if depth <= d {
                            test_until_depth = None;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    mask
}

const WALL_CLOCK_TOKENS: &[&str] = &["Instant::now", "SystemTime", "thread_rng", "rand::"];

/// Tokens that indicate ad-hoc threading. `thread::spawn`/`thread::scope`
/// also match their `std::thread::`-qualified forms; `Builder::new` is the
/// escape hatch `std::thread::Builder` would need, so it is listed too.
const THREAD_SPAWN_TOKENS: &[&str] = &["thread::spawn", "thread::scope", "thread::Builder"];

/// Approved unit suffixes for dimensioned `f64` parameters.
pub const UNIT_SUFFIXES: &[&str] = &[
    "_s", "_us", "_ns", "_ms", "_hz", "_pps", "_bps", "_mbps", "_gbps", "_bytes", "_kb", "_mb",
    "_pkts", "_frac", "_ratio", "_deg",
];

/// Name fragments that mark a parameter as carrying a physical dimension.
const DIMENSIONED: &[&str] = &[
    "time",
    "rate",
    "delay",
    "rtt",
    "interval",
    "duration",
    "period",
    "timeout",
    "bandwidth",
    "bw",
    "size",
    "queue",
    "thresh",
    "capacity",
    "deadline",
    "horizon",
];

fn is_dimensioned(name: &str) -> bool {
    // Exact `_`-separated segment match: `feedback_delay_us` is dimensioned
    // (segment "delay") but `rc_delayed` is not — "delayed" marks a delayed
    // *state value*, whose unit is the state's, not a duration.
    name.split('_').any(|seg| DIMENSIONED.contains(&seg))
}

fn has_unit_suffix(name: &str) -> bool {
    UNIT_SUFFIXES.iter().any(|s| name.ends_with(s))
}

/// Lint one file's source under the given scope.
pub fn lint_source(file: &Path, source: &str, scope: Scope) -> Vec<Violation> {
    let lines = scrub(source);
    let tests = test_mask(&lines);
    let mut out = Vec::new();

    let allowed = |idx: usize, rule: Rule| -> bool {
        if allows(&lines[idx].comment, rule) {
            return true;
        }
        idx > 0 && allows(&lines[idx - 1].comment, rule)
    };
    let mut push = |idx: usize, rule: Rule, message: String| {
        out.push(Violation {
            file: file.to_path_buf(),
            line: idx + 1,
            rule,
            message,
        });
    };

    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        if scope.determinism && !allowed(idx, Rule::HashCollections) {
            for tok in ["HashMap", "HashSet"] {
                if code.contains(tok) {
                    push(
                        idx,
                        Rule::HashCollections,
                        format!(
                            "{tok} has unspecified iteration order; use BTreeMap/BTreeSet or \
                             Vec-indexed storage in simulation logic"
                        ),
                    );
                }
            }
        }
        if scope.wall_clock && !allowed(idx, Rule::WallClock) {
            for tok in WALL_CLOCK_TOKENS {
                if code.contains(tok) {
                    push(
                        idx,
                        Rule::WallClock,
                        format!(
                            "{tok} injects wall-clock/ambient nondeterminism; use SimTime and \
                             the seeded SimRng"
                        ),
                    );
                }
            }
        }
        if scope.thread_spawn && !allowed(idx, Rule::ThreadSpawn) {
            for tok in THREAD_SPAWN_TOKENS {
                if code.contains(tok) {
                    push(
                        idx,
                        Rule::ThreadSpawn,
                        format!(
                            "{tok} outside desim::par breaks the ordered-results determinism \
                             contract; use desim::par::par_map (SIM_THREADS-aware, input-order \
                             results)"
                        ),
                    );
                }
            }
        }
        if tests[idx] {
            continue; // panic/index/unit rules do not apply to test code
        }
        if scope.panic_discipline && !allowed(idx, Rule::Panic) {
            if code.contains(".unwrap()") {
                push(
                    idx,
                    Rule::Panic,
                    ".unwrap() in library code; return a typed error or document the \
                     invariant with `// simlint: allow(panic) — why`"
                        .to_string(),
                );
            }
            if code.contains(".expect(") {
                push(
                    idx,
                    Rule::Panic,
                    ".expect() in library code; return a typed error or document the \
                     invariant with `// simlint: allow(panic) — why`"
                        .to_string(),
                );
            }
        }
        if scope.no_unwrap && !allowed(idx, Rule::NoUnwrapSim) {
            for tok in [".unwrap()", ".expect("] {
                if code.contains(tok) {
                    push(
                        idx,
                        Rule::NoUnwrapSim,
                        format!(
                            "{tok} in a simulation crate: degrade via faults::SimError (or an \
                             infallible construction) instead of aborting mid-run; a cold-path \
                             exception needs `// simlint: allow(no-unwrap-sim) — why`"
                        ),
                    );
                }
            }
        }
        if scope.determinism && !allowed(idx, Rule::IndexLiteral) {
            if let Some(col) = find_literal_index(code) {
                let commented =
                    !line.comment.is_empty() || (idx > 0 && !lines[idx - 1].comment.is_empty());
                if !commented {
                    push(
                        idx,
                        Rule::IndexLiteral,
                        format!(
                            "literal index at column {} without a bound-justifying comment on \
                             this or the preceding line",
                            col + 1
                        ),
                    );
                }
            }
        }
    }

    if scope.unit_suffix {
        lint_unit_suffixes(file, &lines, &tests, &mut out);
    }
    out
}

/// Find `ident[<digits>]`-style literal indexing; returns the column.
fn find_literal_index(code: &str) -> Option<usize> {
    let b: Vec<char> = code.chars().collect();
    let mut i = 0;
    while i < b.len() {
        if b[i] == '['
            && i > 0
            && (b[i - 1].is_alphanumeric() || b[i - 1] == '_' || b[i - 1] == ')' || b[i - 1] == ']')
        {
            let mut j = i + 1;
            let mut digits = 0;
            while j < b.len() && b[j].is_ascii_digit() {
                digits += 1;
                j += 1;
            }
            if digits > 0 && b.get(j) == Some(&']') {
                // `xs[0]` — but not attribute-ish `#[…]` or array types.
                return Some(i);
            }
        }
        i += 1;
    }
    None
}

/// Check `pub fn` parameter names: `f64` params with dimensioned names must
/// carry a unit suffix.
fn lint_unit_suffixes(
    file: &Path,
    lines: &[ScrubbedLine],
    tests: &[bool],
    out: &mut Vec<Violation>,
) {
    let mut i = 0;
    while i < lines.len() {
        if tests[i] {
            i += 1;
            continue;
        }
        let code = lines[i].code.trim_start().to_string();
        if !(code.starts_with("pub fn ") || code.starts_with("pub const fn ")) {
            i += 1;
            continue;
        }
        if allows(&lines[i].comment, Rule::UnitSuffix)
            || (i > 0 && allows(&lines[i - 1].comment, Rule::UnitSuffix))
        {
            i += 1;
            continue;
        }
        // Accumulate the signature until the parameter list closes.
        let mut sig = String::new();
        let mut depth = 0i64;
        let mut started = false;
        let mut j = i;
        'outer: while j < lines.len() {
            for c in lines[j].code.chars() {
                if c == '(' {
                    depth += 1;
                    started = true;
                }
                sig.push(c);
                if c == ')' {
                    depth -= 1;
                    if started && depth == 0 {
                        break 'outer;
                    }
                }
            }
            sig.push(' ');
            j += 1;
        }
        for (name, col_line) in f64_params(&sig) {
            if is_dimensioned(&name) && !has_unit_suffix(&name) {
                out.push(Violation {
                    file: file.to_path_buf(),
                    line: i + 1,
                    rule: Rule::UnitSuffix,
                    message: format!(
                        "pub fn parameter `{name}: f64` carries a dimension but no unit \
                         suffix; rename with one of {:?} (keep conversions in models::units)",
                        UNIT_SUFFIXES
                    ),
                });
                let _ = col_line;
            }
        }
        i = j + 1;
    }
}

/// Extract `name` for every parameter of type exactly `f64` from a flattened
/// signature string.
fn f64_params(sig: &str) -> Vec<(String, usize)> {
    let Some(open) = sig.find('(') else {
        return Vec::new();
    };
    let mut depth = 0i64;
    let mut end = sig.len();
    for (k, c) in sig.char_indices().skip(open) {
        if c == '(' {
            depth += 1;
        } else if c == ')' {
            depth -= 1;
            if depth == 0 {
                end = k;
                break;
            }
        }
    }
    let params = &sig[open + 1..end];
    let mut out = Vec::new();
    // Split on top-level commas (no generics with commas in plain f64 params).
    let mut level = 0i64;
    let mut cur = String::new();
    let mut parts = Vec::new();
    for c in params.chars() {
        match c {
            '(' | '<' | '[' => {
                level += 1;
                cur.push(c);
            }
            ')' | '>' | ']' => {
                level -= 1;
                cur.push(c);
            }
            ',' if level == 0 => {
                parts.push(cur.clone());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    parts.push(cur);
    for p in parts {
        let Some((name, ty)) = p.split_once(':') else {
            continue;
        };
        let name = name.trim().trim_start_matches("mut ").trim();
        if ty.trim() == "f64" && name.chars().all(|c| c.is_alphanumeric() || c == '_') {
            out.push((name.to_string(), 0));
        }
    }
    out
}

/// Recursively lint every `.rs` file under `root/crates/*/src`.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for f in files {
        let rel = f.strip_prefix(root).unwrap_or(&f);
        let Some(scope) = scope_for(rel) else {
            continue;
        };
        let src = std::fs::read_to_string(&f)?;
        out.extend(lint_source(rel, &src, scope));
    }
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == "fixtures" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint a single file as if it were sim-crate library code (used for
/// fixture self-tests and ad-hoc checks).
pub fn lint_path_strict(path: &Path) -> std::io::Result<Vec<Violation>> {
    let src = std::fs::read_to_string(path)?;
    Ok(lint_source(
        path,
        &src,
        Scope {
            determinism: true,
            wall_clock: true,
            panic_discipline: true,
            no_unwrap: true,
            unit_suffix: true,
            thread_spawn: true,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strict(src: &str) -> Vec<Violation> {
        lint_source(
            Path::new("test.rs"),
            src,
            Scope {
                determinism: true,
                wall_clock: true,
                panic_discipline: true,
                no_unwrap: true,
                unit_suffix: true,
                thread_spawn: true,
            },
        )
    }

    #[test]
    fn flags_hash_collections() {
        let v = strict("use std::collections::HashMap;\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::HashCollections);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn allow_directive_suppresses_same_line() {
        let v = strict("use std::collections::HashMap; // simlint: allow(hash-collections)\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn allow_directive_suppresses_next_line() {
        let v = strict(
            "// simlint: allow(hash-collections) — no iteration happens here\nuse std::collections::HashMap;\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn allow_of_other_rule_does_not_suppress() {
        let v = strict("use std::collections::HashMap; // simlint: allow(panic)\n");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn flags_wall_clock_tokens() {
        let v = strict("let t = std::time::Instant::now();\nlet r = rand::random();\n");
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == Rule::WallClock));
    }

    #[test]
    fn flags_unwrap_and_expect_outside_tests() {
        // Under the strict scope both the library `panic` rule and the
        // sim-crate `no-unwrap-sim` rule fire on each site.
        let v = strict("fn f() { x.unwrap(); y.expect(\"msg\"); }\n");
        assert_eq!(v.iter().filter(|v| v.rule == Rule::Panic).count(), 2);
        assert_eq!(v.iter().filter(|v| v.rule == Rule::NoUnwrapSim).count(), 2);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn unwrap_or_is_not_flagged() {
        let v = strict("fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn test_modules_are_exempt_from_panic_rule() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); }\n}\n";
        let v = strict(src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn code_after_test_module_is_linted_again() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); }\n}\nfn g() { y.unwrap(); }\n";
        let v = strict(src);
        assert_eq!(v.len(), 2); // panic + no-unwrap-sim, same site
        assert!(v.iter().all(|v| v.line == 5));
    }

    #[test]
    fn hash_rule_applies_even_in_tests() {
        // A nondeterministic test is a flaky test.
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n";
        let v = strict(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::HashCollections);
    }

    #[test]
    fn strings_and_comments_do_not_fire() {
        let v = strict("fn f() { let s = \"HashMap .unwrap()\"; } // HashMap in prose\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn literal_index_without_comment_fires() {
        let v = strict("fn f() { let x = xs[0]; }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::IndexLiteral);
    }

    #[test]
    fn literal_index_with_bound_comment_ok() {
        let v = strict("fn f() { let x = xs[0]; } // non-empty by construction\n");
        assert!(v.is_empty(), "{v:?}");
        let v = strict("// hosts have exactly one uplink\nfn f() { let x = xs[0]; }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn variable_index_is_not_flagged() {
        let v = strict("fn f(i: usize) { let x = xs[i]; }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn attribute_is_not_literal_index() {
        let v = strict("#[derive(Debug)]\nstruct S;\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unit_suffix_flags_dimensioned_f64() {
        let v = strict("pub fn set(rate: f64) {}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UnitSuffix);
    }

    #[test]
    fn unit_suffix_ok_with_suffix() {
        let v = strict("pub fn set(rate_bps: f64, delay_us: f64, size_bytes: f64) {}\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unit_suffix_ignores_dimensionless_and_non_f64() {
        let v = strict("pub fn set(alpha: f64, rate: u64, p: f64) {}\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unit_suffix_handles_multiline_signatures() {
        let v = strict("pub fn set(\n    rate: f64,\n    n: usize,\n) {}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UnitSuffix);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn private_fns_are_not_unit_checked() {
        let v = strict("fn set(rate: f64) {}\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn flags_thread_spawn_and_scope() {
        let v = strict("fn f() { std::thread::spawn(|| {}); }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::ThreadSpawn);
        let v = strict("fn f() { thread::scope(|s| { s.spawn(|| {}); }); }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::ThreadSpawn);
    }

    #[test]
    fn thread_spawn_applies_even_in_tests() {
        // An ad-hoc thread in a test is still nondeterministic test code.
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { std::thread::spawn(|| {}); }\n}\n";
        let v = strict(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::ThreadSpawn);
    }

    #[test]
    fn thread_spawn_allow_directive() {
        let v = strict("std::thread::scope(|s| {}); // simlint: allow(thread-spawn) — executor\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn par_executor_file_is_exempt_from_thread_spawn() {
        let scope = scope_for(Path::new("crates/desim/src/par.rs")).unwrap();
        assert!(!scope.thread_spawn);
        assert!(scope.determinism, "other rules still apply to par.rs");
        let scope = scope_for(Path::new("crates/desim/src/event.rs")).unwrap();
        assert!(scope.thread_spawn);
    }

    #[test]
    fn span_timer_file_is_exempt_from_wall_clock_only() {
        let scope = scope_for(Path::new("crates/obs/src/span.rs")).unwrap();
        assert!(!scope.wall_clock);
        assert!(
            scope.determinism && scope.panic_discipline && scope.thread_spawn,
            "every other rule still applies to obs/src/span.rs"
        );
        // The rest of the obs crate gets the full sim-crate treatment.
        let scope = scope_for(Path::new("crates/obs/src/trace.rs")).unwrap();
        assert!(scope.wall_clock && scope.determinism);
    }

    #[test]
    fn wall_clock_scope_tracks_determinism_elsewhere() {
        for p in [
            "crates/desim/src/event.rs",
            "crates/desim/src/par.rs",
            "crates/fluid/src/dde.rs",
        ] {
            let scope = scope_for(Path::new(p)).unwrap();
            assert_eq!(scope.wall_clock, scope.determinism, "{p}");
        }
    }

    #[test]
    fn wall_clock_not_flagged_when_scope_disables_it() {
        let v = lint_source(
            Path::new("span.rs"),
            "pub fn stamp() -> std::time::Instant { std::time::Instant::now() }\n",
            Scope {
                determinism: true,
                wall_clock: false,
                panic_discipline: true,
                no_unwrap: true,
                unit_suffix: true,
                thread_spawn: true,
            },
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn no_unwrap_sim_fires_despite_panic_allow() {
        let v = strict(
            "// simlint: allow(panic) — documented invariant\nfn f(xs: &[u64]) -> u64 { xs.first().copied().unwrap() }\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::NoUnwrapSim);
    }

    #[test]
    fn comma_list_allow_satisfies_both_unwrap_rules() {
        let v = strict(
            "// simlint: allow(panic, no-unwrap-sim) — cold path, documented\nfn f(xs: &[u64]) -> u64 { xs.first().copied().unwrap() }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn no_unwrap_sim_exempts_test_code() {
        let v = strict(
            "#[cfg(test)]\nmod tests {\n    fn f(xs: &[u64]) -> u64 { xs.first().copied().unwrap() }\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn scope_routing() {
        assert!(scope_for(Path::new("crates/netsim/src/engine.rs"))
            .is_some_and(|s| s.determinism && s.panic_discipline));
        assert!(scope_for(Path::new("crates/faults/src/schedule.rs"))
            .is_some_and(|s| s.determinism && s.no_unwrap && s.panic_discipline));
        assert!(scope_for(Path::new("crates/workload/src/fct.rs"))
            .is_some_and(|s| s.panic_discipline && !s.no_unwrap));
        assert!(scope_for(Path::new("crates/workload/src/fct.rs"))
            .is_some_and(|s| !s.determinism && s.panic_discipline));
        assert!(scope_for(Path::new("crates/bench/src/bin/fig2.rs")).is_none());
        assert!(scope_for(Path::new("crates/xtask/src/lib.rs")).is_none());
        assert!(scope_for(Path::new("examples/quickstart.rs")).is_none());
        assert!(scope_for(Path::new("crates/core/src/output.rs"))
            .is_some_and(|s| !s.determinism && !s.panic_discipline && !s.unit_suffix));
    }
}
