//! Intraprocedural dataflow passes on the token stream.
//!
//! * **`unit-flow`** — dimensional taint. Units are seeded from suffix
//!   conventions (`_s`, `_us`, `_gbps`, `_pps`, `_bytes`, …) on parameters,
//!   locals and field names, propagated through `let` bindings, assignment
//!   and arithmetic inside one function body, and re-typed by sanctioned
//!   `*_to_<unit>` conversion calls (`models::units`). The strided batch
//!   accessors (`fluid::batch::lane_of`, `batch_stride`) are typed as lane
//!   addresses, so a SoA read `block_mbps[lane_of(c, lane, stride)]` keeps
//!   the block's unit while physical quantities mixed into the address
//!   arithmetic are flagged. Cross-unit `+`/`-`, comparisons and
//!   assignments are flagged.
//! * **`determinism-taint`** — wall-clock taint. Values derived from
//!   `Instant::now()`, `SystemTime::now()` or `.elapsed()` are tracked the
//!   same way and flagged when they flow into sim-state writes (field
//!   assignments), event scheduling (`schedule*`), trace payloads
//!   (`record`) or `SimTime`/`SimDuration`/`SimRng` constructors.
//! * **`float-cmp`** — `==`/`!=` where either side is known floating-point,
//!   outside approved epsilon helpers.
//!
//! This is a lexer-level abstract interpreter, not a type checker: it only
//! reports when *both* sides of an operation have a known, different unit,
//! so unknown units never produce noise — they just reduce coverage.

use std::collections::BTreeMap;

use crate::lex::{Kind, Tok};
use crate::rules::{fn_signature, is_ident, is_punct, skip_generics, split_commas};
use crate::{has_unit_suffix, Ctx, Rule, Scope, Sink};

/// A physical unit, one per approved suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Unit {
    S,
    Us,
    Ns,
    Ms,
    Hz,
    Pps,
    Bps,
    Mbps,
    Gbps,
    Bytes,
    Kb,
    Mb,
    Pkts,
    Dimless,
    Deg,
    /// Result of the strided batch accessors (`fluid::batch::lane_of`,
    /// `batch_stride`): a struct-of-arrays lane address. Not reachable from
    /// any name suffix — only the accessor calls produce it — so physical
    /// quantities mixed into address arithmetic are flagged while the read
    /// `block_mbps[lane_of(c, lane, stride)]` keeps the block's unit.
    LaneIdx,
}

impl Unit {
    /// Suffix-style label for messages.
    fn label(self) -> &'static str {
        match self {
            Unit::S => "_s",
            Unit::Us => "_us",
            Unit::Ns => "_ns",
            Unit::Ms => "_ms",
            Unit::Hz => "_hz",
            Unit::Pps => "_pps",
            Unit::Bps => "_bps",
            Unit::Mbps => "_mbps",
            Unit::Gbps => "_gbps",
            Unit::Bytes => "_bytes",
            Unit::Kb => "_kb",
            Unit::Mb => "_mb",
            Unit::Pkts => "_pkts",
            Unit::Dimless => "_frac/_ratio",
            Unit::Deg => "_deg",
            Unit::LaneIdx => "lane-index",
        }
    }
}

/// Suffixes, longest first so `_mbps` wins over `_bps` wins over `_s`.
const SUFFIX_UNITS: &[(&str, Unit)] = &[
    ("_bytes", Unit::Bytes),
    ("_ratio", Unit::Dimless),
    ("_mbps", Unit::Mbps),
    ("_gbps", Unit::Gbps),
    ("_pkts", Unit::Pkts),
    ("_frac", Unit::Dimless),
    ("_pps", Unit::Pps),
    ("_bps", Unit::Bps),
    ("_deg", Unit::Deg),
    ("_us", Unit::Us),
    ("_ns", Unit::Ns),
    ("_ms", Unit::Ms),
    ("_hz", Unit::Hz),
    ("_kb", Unit::Kb),
    ("_mb", Unit::Mb),
    ("_s", Unit::S),
];

/// Unit carried by a name's suffix, if any.
pub(crate) fn suffix_unit(name: &str) -> Option<Unit> {
    let lower = name.to_ascii_lowercase();
    SUFFIX_UNITS
        .iter()
        .find(|(s, _)| lower.ends_with(s))
        .map(|(_, u)| *u)
}

/// Target unit of a sanctioned `*_to_<unit>` conversion fn (`models::units`
/// naming convention: `us_to_s`, `gbps_to_pps`, `kb_to_pkts`, …).
fn conv_target(name: &str) -> Option<Unit> {
    let pos = name.rfind("_to_")?;
    let tail = &name[pos + "_to".len()..]; // keep the underscore: "_s", "_pps", …
    SUFFIX_UNITS
        .iter()
        .find(|(s, _)| *s == tail)
        .map(|(_, u)| *u)
}

/// Unit (and floatness) produced by well-known accessor methods.
fn method_unit(name: &str) -> Option<(Unit, bool)> {
    match name {
        "as_secs_f64" => Some((Unit::S, true)),
        "as_micros_f64" => Some((Unit::Us, true)),
        "as_millis_f64" => Some((Unit::Ms, true)),
        "as_secs" => Some((Unit::S, false)),
        "as_micros" => Some((Unit::Us, false)),
        "as_millis" => Some((Unit::Ms, false)),
        "as_nanos" => Some((Unit::Ns, false)),
        _ => None,
    }
}

/// Methods that keep their receiver's unit (and are float-valued).
const UNIT_PRESERVING: &[&str] = &[
    "abs", "floor", "ceil", "round", "signum", "copysign", "to_owned", "clone",
];

/// Float-valued methods that destroy the unit (nonlinear maths).
const UNIT_DESTROYING: &[&str] = &[
    "sqrt", "powi", "powf", "exp", "exp2", "ln", "log2", "log10", "recip", "hypot", "fract",
    "mul_add",
];

/// Event-plane / trace-plane sinks: a wall-clock-tainted argument here means
/// profiling data is steering the simulation.
const TAINT_SINK_CALLS: &[&str] = &["schedule", "schedule_at", "schedule_in", "record"];

/// Approved epsilon-comparison helpers: `==`/`!=` inside their bodies is the
/// implementation, not a violation.
const APPROVED_EPS_HELPERS: &[&str] = &[
    "approx_eq",
    "float_eq",
    "feq",
    "rel_eq",
    "ulp_eq",
    "close_enough",
    "assert_close",
];

/// What the pass knows about one value.
#[derive(Debug, Clone, Copy, Default)]
struct Info {
    unit: Option<Unit>,
    is_float: bool,
    tainted: bool,
}

impl Info {
    fn join_taint(mut self, other: Info) -> Info {
        self.tainted |= other.tainted;
        self
    }
}

/// Run the dataflow passes over every function body in the file.
pub(crate) fn flow_passes<'c, 'a>(ctx: &'c Ctx<'a>, scope: Scope, sink: &mut Sink<'c, 'a>) {
    if !scope.unit_flow && !scope.det_taint && !scope.float_cmp {
        return;
    }
    let code = &ctx.code;
    let mut i = 0;
    while i < code.len() {
        if is_ident(code[i], "fn") {
            if let Some((name_idx, open, close)) = fn_signature(code, i) {
                // Body: first `{` after the signature (a `;` first means a
                // trait-method declaration with no body).
                let mut b = close + 1;
                while b < code.len() && !is_punct(code[b], "{") && !is_punct(code[b], ";") {
                    b += 1;
                }
                if b < code.len() && is_punct(code[b], "{") {
                    let body_close = matching_brace(code, b);
                    let fname = code[name_idx].text.clone();
                    let is_test = ctx.is_test_line(code[name_idx].line as usize);
                    let mut scan = Scan {
                        ctx,
                        sink,
                        env: vec![BTreeMap::new()],
                        check_units: scope.unit_flow && !is_test,
                        check_float: scope.float_cmp
                            && !is_test
                            && !APPROVED_EPS_HELPERS.contains(&fname.as_str()),
                        check_taint: scope.det_taint,
                    };
                    if scan.check_units || scan.check_float || scan.check_taint {
                        scan.bind_params(open + 1, close);
                        scan.scan_block(b + 1, body_close);
                    }
                }
            }
        }
        i += 1;
    }
}

/// Index of the `}` matching the `{` at `open` (depth-accurate via the
/// lexer's brace tracking).
fn matching_brace(code: &[&Tok], open: usize) -> usize {
    let d = code[open].depth;
    let mut j = open + 1;
    while j < code.len() {
        if is_punct(code[j], "}") && code[j].depth == d {
            return j;
        }
        j += 1;
    }
    code.len()
}

/// Index just past the matching closer for a single-char delimiter pair.
fn matching_pair(code: &[&Tok], open: usize, end: usize, o: &str, c: &str) -> usize {
    let mut depth = 0i64;
    let mut j = open;
    while j < end {
        if is_punct(code[j], o) {
            depth += 1;
        } else if is_punct(code[j], c) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    end
}

const CONTROL_KWS: &[&str] = &["if", "while", "for", "loop", "match", "unsafe"];

struct Scan<'x, 'c, 'a> {
    ctx: &'c Ctx<'a>,
    sink: &'x mut Sink<'c, 'a>,
    /// Lexically-scoped bindings, innermost last.
    env: Vec<BTreeMap<String, Info>>,
    check_units: bool,
    check_float: bool,
    check_taint: bool,
}

impl Scan<'_, '_, '_> {
    fn code(&self) -> &[&Tok] {
        &self.ctx.code
    }

    fn lookup(&self, name: &str) -> Option<Info> {
        self.env.iter().rev().find_map(|s| s.get(name)).copied()
    }

    fn bind(&mut self, name: &str, info: Info) {
        if let Some(top) = self.env.last_mut() {
            top.insert(name.to_string(), info);
        }
    }

    /// Seed the environment from the parameter list.
    fn bind_params(&mut self, start: usize, end: usize) {
        let code = self.ctx.code.clone();
        for (ps, pe) in split_commas(&code, start, end) {
            let mut s = ps;
            while s < pe && (is_punct(code[s], "&") || is_ident(code[s], "mut")) {
                s += 1;
            }
            let Some(nt) = code.get(s) else { continue };
            if nt.kind != Kind::Ident || !code.get(s + 1).is_some_and(|t| is_punct(t, ":")) {
                continue; // self, destructuring patterns
            }
            let is_float =
                (s + 2..pe).any(|k| is_ident(code[k], "f64") || is_ident(code[k], "f32"));
            self.bind(
                &nt.text.clone(),
                Info {
                    unit: suffix_unit(&nt.text),
                    is_float,
                    tainted: false,
                },
            );
        }
    }

    fn violation(&mut self, tok: &Tok, rule: Rule, msg: String) {
        self.sink
            .push(tok.line as usize, tok.col as usize, rule, msg);
    }

    /// Scan the statements between a `{`'s interior bounds.
    fn scan_block(&mut self, s: usize, e: usize) {
        self.env.push(BTreeMap::new());
        let code = self.ctx.code.clone();
        let mut i = s;
        while i < e {
            let t = code[i];
            if is_punct(t, ";") {
                i += 1;
                continue;
            }
            if is_ident(t, "let") {
                let semi = self.find_semi(i, e);
                self.handle_let(i + 1, semi);
                i = semi + 1;
                continue;
            }
            if is_ident(t, "fn") {
                // Nested fn: skip here; the outer pass visits it separately.
                if let Some((_, _, close)) = fn_signature(&code, i) {
                    let mut b = close + 1;
                    while b < e && !is_punct(code[b], "{") && !is_punct(code[b], ";") {
                        b += 1;
                    }
                    if b < e && is_punct(code[b], "{") {
                        i = matching_brace(&code, b) + 1;
                        continue;
                    }
                }
                i += 1;
                continue;
            }
            if t.kind == Kind::Ident && CONTROL_KWS.contains(&t.text.as_str()) {
                i = self.scan_control(i, e);
                continue;
            }
            if is_punct(t, "{") {
                let close = matching_brace(&code, i);
                self.scan_block(i + 1, close);
                i = close + 1;
                continue;
            }
            let semi = self.find_semi(i, e);
            self.handle_stmt(i, semi);
            i = semi + 1;
        }
        self.env.pop();
    }

    /// First `;` at zero paren/bracket/brace nesting in `[s, e)`, else `e`.
    fn find_semi(&self, s: usize, e: usize) -> usize {
        let code = self.code();
        let (mut p, mut bk, mut br) = (0i64, 0i64, 0i64);
        for j in s..e {
            let t = code[j];
            if t.kind != Kind::Punct {
                continue;
            }
            match t.text.as_str() {
                "(" => p += 1,
                ")" => p -= 1,
                "[" => bk += 1,
                "]" => bk -= 1,
                "{" => br += 1,
                "}" => br -= 1,
                ";" if p == 0 && bk == 0 && br == 0 => return j,
                _ => {}
            }
        }
        e
    }

    /// An `if`/`while`/`for`/`loop`/`match`/`unsafe` construct (or a bare
    /// block) starting at `i`; returns the index just past it.
    fn scan_control(&mut self, i: usize, e: usize) -> usize {
        let code = self.ctx.code.clone();
        if is_punct(code[i], "{") {
            let close = matching_brace(&code, i);
            self.scan_block(i + 1, close);
            return close + 1;
        }
        let is_if = is_ident(code[i], "if");
        let mut j = i + 1;
        loop {
            // Header stretch up to the construct's `{`.
            let hs = j;
            let (mut p, mut bk) = (0i64, 0i64);
            while j < e {
                let u = code[j];
                if u.kind == Kind::Punct {
                    match u.text.as_str() {
                        "(" => p += 1,
                        ")" => p -= 1,
                        "[" => bk += 1,
                        "]" => bk -= 1,
                        "{" if p == 0 && bk == 0 => break,
                        ";" if p == 0 && bk == 0 => {
                            self.scan_region(hs, j);
                            return j + 1;
                        }
                        _ => {}
                    }
                }
                j += 1;
            }
            self.scan_region(hs, j);
            if j >= e {
                return e;
            }
            let close = matching_brace(&code, j);
            self.scan_block(j + 1, close);
            j = close + 1;
            // `else` / `else if` chains.
            if is_if && j < e && is_ident(code[j], "else") {
                j += 1;
                if j < e && is_ident(code[j], "if") {
                    j += 1;
                }
                continue;
            }
            return j;
        }
    }

    /// `let [mut] PAT [: ty] [= expr]` (tokens after the `let` keyword).
    fn handle_let(&mut self, s: usize, e: usize) {
        let code = self.ctx.code.clone();
        let mut i = s;
        if i < e && is_ident(code[i], "mut") {
            i += 1;
        }
        let single = i < e
            && code[i].kind == Kind::Ident
            && code
                .get(i + 1)
                .is_some_and(|t| is_punct(t, ":") || is_punct(t, "=") || i + 1 == e);
        if !single {
            // Pattern binding (`let (a, b) = …`, `let Some(x) = …`): bind
            // pattern idents by their own suffixes, scan the initializer.
            let eq = self.find_assign(s, e, &["="]);
            let mut tainted = false;
            if let Some(eq) = eq {
                tainted = self.scan_region(eq + 1, e).tainted;
            }
            let pat_end = eq.unwrap_or(e);
            for j in s..pat_end {
                let t = code[j];
                if t.kind == Kind::Ident
                    && !matches!(
                        t.text.as_str(),
                        "mut" | "ref" | "Some" | "Ok" | "Err" | "None"
                    )
                {
                    self.bind(
                        &t.text.clone(),
                        Info {
                            unit: suffix_unit(&t.text),
                            is_float: false,
                            tainted,
                        },
                    );
                }
            }
            return;
        }
        let name_tok = code[i];
        let name = name_tok.text.clone();
        let mut j = i + 1;
        let mut ann_float = false;
        if j < e && is_punct(code[j], ":") {
            let eq = self.find_assign(j, e, &["="]).unwrap_or(e);
            ann_float = (j + 1..eq).any(|k| is_ident(code[k], "f64") || is_ident(code[k], "f32"));
            j = eq;
        }
        let declared = suffix_unit(&name);
        if j >= e || !is_punct(code[j], "=") {
            self.bind(
                &name,
                Info {
                    unit: declared,
                    is_float: ann_float,
                    tainted: false,
                },
            );
            return;
        }
        let info = self.scan_region(j + 1, e);
        if self.check_units {
            if let (Some(d), Some(r)) = (declared, info.unit) {
                if d != r {
                    self.violation(
                        name_tok,
                        Rule::UnitFlow,
                        format!(
                            "`{name}` is `{}` but its initializer has unit `{}`; convert \
                             through models::units",
                            d.label(),
                            r.label()
                        ),
                    );
                }
            }
        }
        self.bind(
            &name,
            Info {
                unit: declared.or(info.unit),
                is_float: ann_float || info.is_float,
                tainted: info.tainted,
            },
        );
    }

    /// First top-level assignment operator from `ops` in `[s, e)`.
    fn find_assign(&self, s: usize, e: usize, ops: &[&str]) -> Option<usize> {
        let code = self.code();
        let (mut p, mut bk, mut br) = (0i64, 0i64, 0i64);
        for j in s..e {
            let t = code[j];
            if t.kind != Kind::Punct {
                continue;
            }
            match t.text.as_str() {
                "(" => p += 1,
                ")" => p -= 1,
                "[" => bk += 1,
                "]" => bk -= 1,
                "{" => br += 1,
                "}" => br -= 1,
                x if p == 0 && bk == 0 && br == 0 && ops.contains(&x) => return Some(j),
                _ => {}
            }
        }
        None
    }

    /// A non-`let` statement: assignment or bare expression.
    fn handle_stmt(&mut self, s: usize, e: usize) {
        const ASSIGN_OPS: &[&str] = &[
            "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
        ];
        let code = self.ctx.code.clone();
        let Some(op_idx) = self.find_assign(s, e, ASSIGN_OPS) else {
            self.scan_region(s, e);
            return;
        };
        let op = code[op_idx].text.clone();
        let rinfo = self.scan_region(op_idx + 1, e);
        // Left-hand side: a plain local, or a field/index path (state write).
        let mut ls = s;
        while ls < op_idx && (is_punct(code[ls], "*") || is_punct(code[ls], "&")) {
            ls += 1;
        }
        let is_state_write = (ls..op_idx).any(|k| is_punct(code[k], ".") || is_punct(code[k], "["));
        // Scan any index expressions inside the lhs.
        let mut k = ls;
        while k < op_idx {
            if is_punct(code[k], "[") {
                let close = matching_pair(&code, k, op_idx, "[", "]");
                self.scan_region(k + 1, close);
                k = close + 1;
            } else {
                k += 1;
            }
        }
        let lunit = self.lhs_unit(ls, op_idx);
        if self.check_units && matches!(op.as_str(), "=" | "+=" | "-=") {
            if let (Some(l), Some(r)) = (lunit, rinfo.unit) {
                if l != r {
                    self.violation(
                        code[op_idx],
                        Rule::UnitFlow,
                        format!(
                            "assignment mixes units: left-hand side is `{}` but the \
                             right-hand side is `{}`; convert through models::units",
                            l.label(),
                            r.label()
                        ),
                    );
                }
            }
        }
        if self.check_taint && is_state_write && rinfo.tainted {
            self.violation(
                code[op_idx],
                Rule::DetTaint,
                "wall-clock-derived value written into simulation state; profiling may \
                 measure the simulation but must never steer it (keep wall-clock reads \
                 inside obs::span)"
                    .to_string(),
            );
        }
        // Update a plain-local binding.
        if op_idx - ls == 1 && code[ls].kind == Kind::Ident {
            let name = code[ls].text.clone();
            let prev = self.lookup(&name).unwrap_or_default();
            self.bind(
                &name,
                Info {
                    unit: prev.unit.or(rinfo.unit),
                    is_float: prev.is_float || rinfo.is_float,
                    tainted: rinfo.tainted || (op != "=" && prev.tainted),
                },
            );
        }
    }

    /// Unit of an assignment target: single local → environment; dotted path
    /// or index → suffix of the last field/ident name.
    fn lhs_unit(&self, s: usize, e: usize) -> Option<Unit> {
        let code = self.code();
        if e - s == 1 && code[s].kind == Kind::Ident {
            let name = &code[s].text;
            return self
                .lookup(name)
                .and_then(|i| i.unit)
                .or_else(|| suffix_unit(name));
        }
        // Last identifier before the end / before an index bracket.
        let mut last: Option<&Tok> = None;
        let mut k = s;
        while k < e {
            if is_punct(code[k], "[") {
                k = matching_pair(code, k, e, "[", "]") + 1;
                continue;
            }
            if code[k].kind == Kind::Ident {
                last = Some(code[k]);
            }
            k += 1;
        }
        last.and_then(|t| suffix_unit(&t.text))
    }

    /// A region: an expression stretch possibly containing barrier tokens
    /// (`,`, `=>`, `&&`, `||`, `;`, `return`, `else`, `in`) and blocks.
    /// Scans every segment; returns the single segment's info, or a
    /// taint-joined default for multi-segment regions.
    fn scan_region(&mut self, s: usize, e: usize) -> Info {
        let code = self.ctx.code.clone();
        let (mut p, mut bk, mut br) = (0i64, 0i64, 0i64);
        let mut segs: Vec<(usize, usize)> = Vec::new();
        let mut seg = s;
        let mut j = s;
        while j < e {
            let t = code[j];
            let barrier = match t.kind {
                Kind::Punct => {
                    match t.text.as_str() {
                        "(" => p += 1,
                        ")" => p -= 1,
                        "[" => bk += 1,
                        "]" => bk -= 1,
                        "{" => br += 1,
                        "}" => br -= 1,
                        _ => {}
                    }
                    p == 0
                        && bk == 0
                        && br == 0
                        && matches!(t.text.as_str(), "," | "=>" | "&&" | "||" | ";")
                }
                Kind::Ident => {
                    p == 0
                        && bk == 0
                        && br == 0
                        && matches!(t.text.as_str(), "return" | "else" | "in" | "let")
                }
                _ => false,
            };
            if barrier {
                segs.push((seg, j));
                seg = j + 1;
            }
            j += 1;
        }
        segs.push((seg, e));
        let mut infos = Vec::new();
        for (ss, se) in segs {
            if ss < se {
                infos.push(self.scan_segment(ss, se));
            }
        }
        match infos.len() {
            0 => Info::default(),
            1 => infos[0],
            _ => Info {
                unit: None,
                is_float: infos.iter().any(|i| i.is_float),
                tainted: infos.iter().any(|i| i.tainted),
            },
        }
    }

    /// One barrier-free segment: handle a top-level comparison, else fall
    /// through to additive scanning.
    fn scan_segment(&mut self, s: usize, e: usize) -> Info {
        let code = self.ctx.code.clone();
        if s >= e {
            return Info::default();
        }
        if code[s].kind == Kind::Ident && CONTROL_KWS.contains(&code[s].text.as_str()) {
            self.scan_control(s, e);
            return Info::default();
        }
        // Find a top-level comparison operator (skipping turbofish generics).
        let (mut p, mut bk, mut br) = (0i64, 0i64, 0i64);
        let mut j = s;
        while j < e {
            let t = code[j];
            if t.kind == Kind::Punct {
                match t.text.as_str() {
                    "(" => p += 1,
                    ")" => p -= 1,
                    "[" => bk += 1,
                    "]" => bk -= 1,
                    "{" => br += 1,
                    "}" => br -= 1,
                    "<" if j > s && is_punct(code[j - 1], "::") => {
                        j = skip_generics(&code, j);
                        continue;
                    }
                    op @ ("==" | "!=" | "<" | ">" | "<=" | ">=")
                        if p == 0 && bk == 0 && br == 0 =>
                    {
                        let li = self.additive_info(s, j);
                        let ri = self.additive_info(j + 1, e);
                        if self.check_units {
                            if let (Some(l), Some(r)) = (li.unit, ri.unit) {
                                if l != r {
                                    self.violation(
                                        t,
                                        Rule::UnitFlow,
                                        format!(
                                            "comparison mixes units: left is `{}`, right is \
                                             `{}`; convert through models::units",
                                            l.label(),
                                            r.label()
                                        ),
                                    );
                                }
                            }
                        }
                        if self.check_float
                            && (op == "==" || op == "!=")
                            && (li.is_float || ri.is_float)
                        {
                            self.violation(
                                t,
                                Rule::FloatCmp,
                                format!(
                                    "`{op}` on floating-point values is exact bit comparison; \
                                     use an epsilon helper (approx_eq & friends) or document \
                                     an exact-by-design check with `// simlint: \
                                     allow(float-cmp) — why`"
                                ),
                            );
                        }
                        return Info {
                            unit: None,
                            is_float: false,
                            tainted: li.tainted || ri.tainted,
                        };
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        self.additive_info(s, e)
    }

    /// Split at top-level binary `+`/`-`; check cross-unit mixing.
    fn additive_info(&mut self, s: usize, e: usize) -> Info {
        let code = self.ctx.code.clone();
        let (mut p, mut bk, mut br) = (0i64, 0i64, 0i64);
        let mut parts: Vec<(usize, usize)> = Vec::new();
        let mut ops: Vec<usize> = Vec::new();
        let mut seg = s;
        for j in s..e {
            let t = code[j];
            if t.kind != Kind::Punct {
                continue;
            }
            match t.text.as_str() {
                "(" => p += 1,
                ")" => p -= 1,
                "[" => bk += 1,
                "]" => bk -= 1,
                "{" => br += 1,
                "}" => br -= 1,
                "+" | "-" if p == 0 && bk == 0 && br == 0 && j > s => {
                    // Binary only if the previous token ends an operand.
                    let prev = code[j - 1];
                    let binary = matches!(
                        prev.kind,
                        Kind::Ident | Kind::Int | Kind::Float | Kind::Str | Kind::Char
                    ) || matches!(prev.text.as_str(), ")" | "]" | "}" | "?");
                    if binary {
                        parts.push((seg, j));
                        ops.push(j);
                        seg = j + 1;
                    }
                }
                _ => {}
            }
        }
        parts.push((seg, e));
        if parts.len() == 1 {
            return self.mul_info(s, e);
        }
        let infos: Vec<Info> = parts
            .iter()
            .map(|&(ps, pe)| self.mul_info(ps, pe))
            .collect();
        if self.check_units {
            let mut first: Option<Unit> = None;
            for (k, info) in infos.iter().enumerate() {
                let Some(u) = info.unit else { continue };
                match first {
                    None => first = Some(u),
                    Some(f) if f != u => {
                        // The operator preceding this part anchors the span.
                        let op_tok = code[ops[k.saturating_sub(1).min(ops.len() - 1)]];
                        self.violation(
                            op_tok,
                            Rule::UnitFlow,
                            format!(
                                "`{}` mixes units `{}` and `{}`; convert through \
                                 models::units",
                                op_tok.text,
                                f.label(),
                                u.label()
                            ),
                        );
                    }
                    Some(_) => {}
                }
            }
        }
        Info {
            unit: infos.iter().find_map(|i| i.unit),
            is_float: infos.iter().any(|i| i.is_float),
            tainted: infos.iter().any(|i| i.tainted),
        }
    }

    /// Multiplicative chain: a bare numeric literal factor keeps the other
    /// factor's unit (`2.0 * x_s` is still seconds); any non-literal second
    /// factor destroys it (`x_bytes / y_s` is a rate we don't name), and so
    /// does dividing *by* the unit-carrying factor (`1.0 / c_pps` is a
    /// period, not a rate).
    fn mul_info(&mut self, s: usize, e: usize) -> Info {
        let code = self.ctx.code.clone();
        let (mut p, mut bk, mut br) = (0i64, 0i64, 0i64);
        let mut parts: Vec<(usize, usize)> = Vec::new();
        let mut ops: Vec<String> = Vec::new(); // ops[k-1] precedes parts[k]
        let mut seg = s;
        for j in s..e {
            let t = code[j];
            if t.kind != Kind::Punct {
                continue;
            }
            match t.text.as_str() {
                "(" => p += 1,
                ")" => p -= 1,
                "[" => bk += 1,
                "]" => bk -= 1,
                "{" => br += 1,
                "}" => br -= 1,
                "*" | "/" | "%" if p == 0 && bk == 0 && br == 0 && j > s => {
                    let prev = code[j - 1];
                    let binary = matches!(
                        prev.kind,
                        Kind::Ident | Kind::Int | Kind::Float | Kind::Str | Kind::Char
                    ) || matches!(prev.text.as_str(), ")" | "]" | "}" | "?");
                    if binary {
                        parts.push((seg, j));
                        ops.push(t.text.clone());
                        seg = j + 1;
                    }
                }
                _ => {}
            }
        }
        parts.push((seg, e));
        if parts.len() == 1 {
            return self.postfix_info(s, e);
        }
        let infos: Vec<Info> = parts
            .iter()
            .map(|&(ps, pe)| self.postfix_info(ps, pe))
            .collect();
        // A factor's unit survives only if every other factor is a bare
        // numeric literal (pure scaling) AND the factor is not itself a
        // divisor (left-assoc chain: factor k>0 is inverted by a `/` or `%`
        // directly before it).
        let non_literal: Vec<(usize, &Info)> = parts
            .iter()
            .zip(&infos)
            .enumerate()
            .filter(|(_, (&(ps, pe), _))| {
                !(pe - ps == 1 && matches!(code[ps].kind, Kind::Int | Kind::Float))
            })
            .map(|(k, (_, i))| (k, i))
            .collect();
        let unit = match non_literal.as_slice() {
            [(k, i)] if *k == 0 || ops[k - 1] == "*" => i.unit,
            _ => None,
        };
        Info {
            unit,
            is_float: infos.iter().any(|i| i.is_float),
            tainted: infos.iter().any(|i| i.tainted),
        }
    }

    /// A primary expression plus its postfix chain (calls, fields, indexing,
    /// casts, `?`).
    fn postfix_info(&mut self, s: usize, e: usize) -> Info {
        let code = self.ctx.code.clone();
        let mut i = s;
        // Unary prefixes.
        while i < e
            && (matches!(code[i].text.as_str(), "&" | "&&" | "*" | "-" | "!")
                && code[i].kind == Kind::Punct
                || is_ident(code[i], "mut"))
        {
            i += 1;
        }
        if i >= e {
            return Info::default();
        }
        let mut info = Info::default();
        let t = code[i];
        match t.kind {
            Kind::Float => {
                info.is_float = true;
                i += 1;
            }
            Kind::Int | Kind::Str | Kind::Char | Kind::Lifetime => {
                i += 1;
            }
            Kind::Punct if t.text == "(" => {
                let close = matching_pair(&code, i, e, "(", ")");
                info = self.scan_region(i + 1, close);
                i = close + 1;
            }
            Kind::Punct if t.text == "{" => {
                let close = matching_brace(&code, i);
                self.scan_block(i + 1, close);
                i = close + 1;
            }
            Kind::Punct if t.text == "|" => {
                // Closure: find the closing `|`, bind nothing, scan the body
                // as a region.
                let mut j = i + 1;
                while j < e && !is_punct(code[j], "|") {
                    j += 1;
                }
                let body = self.scan_region(j + 1, e);
                return Info {
                    unit: None,
                    is_float: false,
                    tainted: body.tainted,
                };
            }
            Kind::Ident if CONTROL_KWS.contains(&t.text.as_str()) => {
                self.scan_control(i, e);
                return Info::default();
            }
            Kind::Ident => {
                // Path: ident (:: ident | ::<…>)*
                let mut path: Vec<String> = vec![t.text.clone()];
                let mut j = i + 1;
                while j + 1 < e && is_punct(code[j], "::") {
                    if is_punct(code[j + 1], "<") {
                        j = skip_generics(&code, j + 1);
                    } else if code[j + 1].kind == Kind::Ident {
                        path.push(code[j + 1].text.clone());
                        j += 2;
                    } else {
                        break;
                    }
                }
                if j < e && is_punct(code[j], "(") {
                    let close = matching_pair(&code, j, e, "(", ")");
                    info = self.call_info(&path, t, j + 1, close);
                    i = close + 1;
                } else if j < e
                    && is_punct(code[j], "!")
                    && code
                        .get(j + 1)
                        .is_some_and(|n| is_punct(n, "(") || is_punct(n, "[") || is_punct(n, "{"))
                {
                    // Macro invocation: scan the arguments as a region.
                    let (o, c) = match code[j + 1].text.as_str() {
                        "(" => ("(", ")"),
                        "[" => ("[", "]"),
                        _ => ("{", "}"),
                    };
                    let close = if o == "{" {
                        matching_brace(&code, j + 1)
                    } else {
                        matching_pair(&code, j + 1, e, o, c)
                    };
                    let inner = self.scan_region(j + 2, close);
                    info.tainted = inner.tainted;
                    i = close + 1;
                } else {
                    if path.len() == 1 {
                        info = self.lookup(&path[0]).unwrap_or(Info {
                            unit: suffix_unit(&path[0]),
                            is_float: false,
                            tainted: false,
                        });
                    }
                    i = j;
                }
            }
            _ => {
                // Unrecognized leading token: skip it, scan the rest.
                let rest = self.scan_region(i + 1, e);
                return Info::default().join_taint(rest);
            }
        }
        // Postfix chain.
        while i < e {
            let t = code[i];
            if is_punct(t, ".") && code.get(i + 1).is_some_and(|n| n.kind == Kind::Ident) {
                let m = code[i + 1];
                let mut j = i + 2;
                if j + 1 < e && is_punct(code[j], "::") && is_punct(code[j + 1], "<") {
                    j = skip_generics(&code, j + 1); // turbofish
                }
                if j < e && is_punct(code[j], "(") {
                    let close = matching_pair(&code, j, e, "(", ")");
                    info = self.method_info(info, m, j + 1, close);
                    i = close + 1;
                } else {
                    // Field access (or tuple index): unit from the suffix.
                    info.unit = suffix_unit(&m.text);
                    i += 2;
                }
                continue;
            }
            if is_punct(t, "[") {
                let close = matching_pair(&code, i, e, "[", "]");
                let idx = self.scan_region(i + 1, close);
                info.tainted |= idx.tainted;
                i = close + 1;
                continue;
            }
            if is_punct(t, "?") {
                i += 1;
                continue;
            }
            if is_ident(t, "as") {
                // Cast: consume the type, track floatness.
                let mut j = i + 1;
                info.is_float = j < e && (is_ident(code[j], "f64") || is_ident(code[j], "f32"));
                while j < e
                    && (code[j].kind == Kind::Ident
                        || is_punct(code[j], "::")
                        || is_punct(code[j], "<")
                        || is_punct(code[j], ">"))
                {
                    j += 1;
                }
                i = j;
                continue;
            }
            // Anything else ends the chain; scan the remainder for effects.
            let rest = self.scan_region(i + 1, e);
            info.tainted |= rest.tainted;
            info.unit = None;
            break;
        }
        info
    }

    /// A free/path call `path(args)`.
    fn call_info(&mut self, path: &[String], at: &Tok, args_s: usize, args_e: usize) -> Info {
        let code = self.ctx.code.clone();
        let mut arg_infos = Vec::new();
        for (as_, ae) in split_commas(&code, args_s, args_e) {
            arg_infos.push(self.scan_region(as_, ae));
        }
        let any_tainted = arg_infos.iter().any(|i| i.tainted);
        let last = path.last().map(String::as_str).unwrap_or("");
        let penult = path
            .len()
            .checked_sub(2)
            .map(|k| path[k].as_str())
            .unwrap_or("");
        let mut info = Info {
            unit: None,
            is_float: false,
            tainted: any_tainted,
        };
        // Taint sources: the wall clock.
        if last == "now" && (penult == "Instant" || penult == "SystemTime") {
            info.tainted = true;
        }
        if last == "drain" && path.iter().any(|p| p == "span") {
            info.tainted = true;
        }
        // Taint sinks: scheduling, tracing, sim-time/RNG construction.
        if self.check_taint && any_tainted {
            if TAINT_SINK_CALLS.contains(&last) {
                self.violation(
                    at,
                    Rule::DetTaint,
                    format!(
                        "wall-clock-derived value passed to `{}` — profiling data must not \
                         reach the event queue or trace payloads",
                        path.join("::")
                    ),
                );
            }
            if (penult == "SimTime" || penult == "SimDuration") && last.starts_with("from")
                || (penult == "SimRng" && last == "new")
            {
                self.violation(
                    at,
                    Rule::DetTaint,
                    format!(
                        "wall-clock-derived value used to construct `{}` — simulation \
                         time/randomness must derive only from the seed",
                        path.join("::")
                    ),
                );
            }
        }
        // Strided batch accessors yield SoA lane addresses, never physical
        // quantities: typing them lets the pass flag a `_s`/`_kb`/… value
        // leaking into address arithmetic without losing the unit a
        // suffix-named block carries through the indexed read itself.
        if matches!(last, "lane_of" | "batch_stride") {
            info.unit = Some(Unit::LaneIdx);
            return info;
        }
        // Sanctioned conversions re-type their result.
        if let Some(u) = conv_target(last) {
            info.unit = Some(u);
            info.is_float = true;
        } else if has_unit_suffix(last) {
            info.unit = suffix_unit(last);
            info.is_float = true;
        }
        info
    }

    /// A method call `recv.m(args)` where `recv` already evaluated to
    /// `recv_info`.
    fn method_info(&mut self, recv: Info, m: &Tok, args_s: usize, args_e: usize) -> Info {
        let code = self.ctx.code.clone();
        let mut arg_infos = Vec::new();
        for (as_, ae) in split_commas(&code, args_s, args_e) {
            arg_infos.push(self.scan_segment(as_, ae));
        }
        let any_tainted = arg_infos.iter().any(|i| i.tainted);
        let name = m.text.as_str();
        let mut info = Info {
            unit: None,
            is_float: false,
            tainted: recv.tainted || any_tainted,
        };
        if name == "elapsed" {
            info.tainted = true;
            return info;
        }
        if let Some((u, f)) = method_unit(name) {
            info.unit = Some(u);
            info.is_float = f;
            return info;
        }
        if matches!(name, "min" | "max" | "clamp") {
            if self.check_units {
                if let Some(ru) = recv.unit {
                    for a in &arg_infos {
                        if let Some(au) = a.unit {
                            if au != ru {
                                self.violation(
                                    m,
                                    Rule::UnitFlow,
                                    format!(
                                        "`{name}` mixes units: receiver is `{}`, argument is \
                                         `{}`; convert through models::units",
                                        ru.label(),
                                        au.label()
                                    ),
                                );
                            }
                        }
                    }
                }
            }
            info.unit = recv.unit.or_else(|| arg_infos.iter().find_map(|a| a.unit));
            info.is_float = recv.is_float || arg_infos.iter().any(|a| a.is_float);
            return info;
        }
        if UNIT_PRESERVING.contains(&name) {
            info.unit = recv.unit;
            info.is_float = recv.is_float;
            return info;
        }
        if UNIT_DESTROYING.contains(&name) {
            info.is_float = true;
            return info;
        }
        if self.check_taint && any_tainted && TAINT_SINK_CALLS.contains(&name) {
            self.violation(
                m,
                Rule::DetTaint,
                format!(
                    "wall-clock-derived value passed to `.{name}()` — profiling data must \
                     not reach the event queue or trace payloads"
                ),
            );
        }
        if let Some(u) = conv_target(name) {
            info.unit = Some(u);
            info.is_float = true;
            return info;
        }
        if has_unit_suffix(name) {
            info.unit = suffix_unit(name);
            return info;
        }
        info
    }
}
