//! `cargo run -p xtask -- <command>` — workspace tooling.
//!
//! Commands:
//!
//! * `lint [--format text|json] [--fix-baseline] [PATH...]` — run the
//!   simlint pass over `crates/*/src` (or over the given files, linted with
//!   every rule enabled and no baseline). Workspace findings are diffed
//!   against `simlint.baseline.json`; the run fails only on error-severity
//!   findings beyond the baseline. `--fix-baseline` rewrites the baseline
//!   from the current findings. `--format json` emits the full
//!   machine-readable report on stdout.
//! * `explain <rule>` — print the long-form rationale for a rule.
//! * `selftest` — lint the seeded fixtures under `crates/xtask/fixtures`:
//!   each `bad_*` fixture must trigger the rule named in its file name, each
//!   `good_*` fixture must stay quiet on it.
//! * `determinism` — run the packet simulator twice with the same seed and
//!   verify the rendered traces are byte-identical.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use desim::SimDuration;
use desim::SimTime;
use ecn_delay_core::scenarios::{single_switch_longlived, Protocol};
use netsim::EngineConfig;
use xtask::report::{apply_baseline, parse_baseline, render_baseline, render_report, Analysis};
use xtask::{lint_path_strict, lint_source, lint_workspace, scope_for, Rule, ALL_RULES};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("selftest") => cmd_selftest(),
        Some("determinism") => cmd_determinism(),
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- <lint [--format text|json] [--fix-baseline] \
                 [PATH...] | explain <rule> | selftest | determinism>"
            );
            ExitCode::from(2)
        }
    }
}

/// Locate the workspace root: walk up from CWD until a dir containing
/// `crates/` and `Cargo.toml` is found.
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

const BASELINE_FILE: &str = "simlint.baseline.json";

fn cmd_lint(args: &[String]) -> ExitCode {
    let mut format_json = false;
    let mut fix_baseline = false;
    let mut paths: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => format_json = true,
                Some("text") => format_json = false,
                other => {
                    eprintln!("simlint: --format expects `text` or `json`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--fix-baseline" => fix_baseline = true,
            p => paths.push(p),
        }
    }

    let analysis = if paths.is_empty() {
        let root = workspace_root();
        let violations = match lint_workspace(&root) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("simlint: io error: {e}");
                return ExitCode::from(2);
            }
        };
        if fix_baseline {
            let rendered = render_baseline(&violations);
            let path = root.join(BASELINE_FILE);
            if let Err(e) = std::fs::write(&path, &rendered) {
                eprintln!("simlint: write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            println!(
                "simlint: baseline rewritten ({} error finding(s)) -> {}",
                violations
                    .iter()
                    .filter(|v| v.severity() == xtask::Severity::Error)
                    .count(),
                path.display()
            );
        }
        let baseline = match std::fs::read_to_string(root.join(BASELINE_FILE)) {
            Ok(src) => match parse_baseline(&src) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("simlint: {BASELINE_FILE}: {e}");
                    return ExitCode::from(2);
                }
            },
            Err(_) => Vec::new(), // no baseline file: everything is new
        };
        apply_baseline(violations, &baseline)
    } else {
        // Explicit paths: strict scope, no baseline.
        let mut out = Vec::new();
        for p in &paths {
            match lint_path_strict(Path::new(p)) {
                Ok(v) => out.extend(v),
                Err(e) => {
                    eprintln!("simlint: {p}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        apply_baseline(out, &[])
    };

    if format_json {
        print!("{}", render_report(&analysis.findings, &analysis.stale));
    } else {
        print_text_report(&analysis);
    }
    if analysis.new_errors().next().is_some() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn print_text_report(analysis: &Analysis) {
    for (v, baselined) in &analysis.findings {
        if *baselined {
            println!("{v} (baselined)");
        } else {
            println!("{v}");
        }
    }
    for b in &analysis.stale {
        println!(
            "simlint: stale baseline entry: {} [{}] x{} no longer found — run \
             `cargo xtask lint --fix-baseline`",
            b.file, b.rule, b.count
        );
    }
    let new_errors = analysis.new_errors().count();
    let baselined = analysis.findings.iter().filter(|(_, b)| *b).count();
    let warnings = analysis
        .findings
        .iter()
        .filter(|(v, _)| v.severity() == xtask::Severity::Warning)
        .count();
    if analysis.findings.is_empty() {
        println!("simlint: clean");
    } else {
        println!(
            "simlint: {} finding(s): {new_errors} new error(s), {baselined} baselined, \
             {warnings} warning(s)",
            analysis.findings.len()
        );
    }
}

fn cmd_explain(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some(name) => match Rule::from_name(name) {
            Some(rule) => {
                println!("{} ({})", rule.name(), rule.severity().name());
                println!();
                println!("{}", rule.explain());
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("simlint: unknown rule {name:?}; known rules:");
                for r in ALL_RULES {
                    eprintln!("  {}", r.name());
                }
                ExitCode::from(2)
            }
        },
        None => {
            for r in ALL_RULES {
                println!(
                    "{:<18} {}",
                    r.name(),
                    r.explain().lines().next().unwrap_or("")
                );
            }
            ExitCode::SUCCESS
        }
    }
}

/// Fixture protocol: `bad_<rule>.rs` must trigger its rule at least once
/// under the strict scope; `good_<rule>.rs` must trigger it exactly zero
/// times (sanctioned-conversion negatives for the dataflow passes).
fn cmd_selftest() -> ExitCode {
    let dir = workspace_root().join("crates/xtask/fixtures");
    let bad = [
        ("bad_hash_collections.rs", Rule::HashCollections),
        ("bad_wall_clock.rs", Rule::WallClock),
        ("bad_panic.rs", Rule::Panic),
        ("bad_no_unwrap_sim.rs", Rule::NoUnwrapSim),
        ("bad_index_literal.rs", Rule::IndexLiteral),
        ("bad_unit_suffix.rs", Rule::UnitSuffix),
        ("bad_thread_spawn.rs", Rule::ThreadSpawn),
        ("bad_float_cmp.rs", Rule::FloatCmp),
        ("bad_unit_flow.rs", Rule::UnitFlow),
        ("bad_det_taint.rs", Rule::DetTaint),
        ("bad_raw_fs_write.rs", Rule::RawFsWrite),
        ("bad_stale_allow.rs", Rule::StaleAllow),
    ];
    let good = [
        ("good_unit_flow.rs", Rule::UnitFlow),
        ("good_det_taint.rs", Rule::DetTaint),
        ("good_float_cmp.rs", Rule::FloatCmp),
        ("good_raw_fs_write.rs", Rule::RawFsWrite),
    ];
    let mut failed = false;
    for (name, rule) in bad {
        let path = dir.join(name);
        match lint_path_strict(&path) {
            Ok(vs) => {
                let hits = vs.iter().filter(|v| v.rule == rule).count();
                if hits == 0 {
                    eprintln!("selftest FAIL: {name} did not trigger {}", rule.name());
                    failed = true;
                } else {
                    println!("selftest ok: {name} -> {} x{hits}", rule.name());
                }
            }
            Err(e) => {
                eprintln!("selftest FAIL: {name}: {e}");
                failed = true;
            }
        }
    }
    for (name, rule) in good {
        let path = dir.join(name);
        match lint_path_strict(&path) {
            Ok(vs) => {
                let hits: Vec<_> = vs.iter().filter(|v| v.rule == rule).collect();
                if hits.is_empty() {
                    println!("selftest ok: {name} -> {} x0 (sanctioned)", rule.name());
                } else {
                    eprintln!(
                        "selftest FAIL: {name} must stay quiet on {}, got:",
                        rule.name()
                    );
                    for v in hits {
                        eprintln!("  {v}");
                    }
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("selftest FAIL: {name}: {e}");
                failed = true;
            }
        }
    }
    // The path-based allowlists, proven in both directions on the real
    // exempted files: each sanctioned surface must trip its rule under the
    // strict (allowlist-free) scope — it genuinely contains the banned
    // tokens — yet lint clean under its workspace scope, proving the
    // path-based exemption is what suppresses the finding (and that the
    // other passes accept the file's dataflow).
    let exempted: [(&str, Rule); 5] = [
        ("crates/obs/src/span.rs", Rule::WallClock),
        ("crates/bench/src/harness.rs", Rule::WallClock),
        ("crates/desim/src/supervise.rs", Rule::WallClock),
        ("crates/desim/src/supervise.rs", Rule::ThreadSpawn),
        ("crates/store/src/atomic.rs", Rule::RawFsWrite),
    ];
    for (rel, rule) in exempted {
        let rel = Path::new(rel);
        let abs = workspace_root().join(rel);
        match std::fs::read_to_string(&abs) {
            Ok(src) => {
                let strict_hits = lint_path_strict(&abs)
                    .map(|vs| vs.iter().filter(|v| v.rule == rule).count())
                    .unwrap_or(0);
                let scoped: Vec<_> = scope_for(rel)
                    .map_or_else(Vec::new, |s| lint_source(rel, &src, s))
                    .into_iter()
                    .filter(|v| v.rule == rule)
                    .collect();
                if strict_hits == 0 {
                    eprintln!(
                        "selftest FAIL: {} no longer exercises {}",
                        rel.display(),
                        rule.name()
                    );
                    failed = true;
                } else if !scoped.is_empty() {
                    eprintln!(
                        "selftest FAIL: {} not exempt from {} under workspace scope:",
                        rel.display(),
                        rule.name()
                    );
                    for v in &scoped {
                        eprintln!("  {v}");
                    }
                    failed = true;
                } else {
                    println!(
                        "selftest ok: {} -> {} x{strict_hits} strict, exempt in scope",
                        rel.display(),
                        rule.name()
                    );
                }
            }
            Err(e) => {
                eprintln!("selftest FAIL: read {}: {e}", abs.display());
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("selftest: all fixtures trigger their rules");
        ExitCode::SUCCESS
    }
}

/// Render a run's observable outputs into a canonical byte string.
fn trace_bytes() -> String {
    use std::fmt::Write as _;
    let (mut eng, bottleneck) = single_switch_longlived(
        Protocol::Dcqcn,
        4,
        10e9,
        SimDuration::from_micros(4),
        EngineConfig::default(),
    );
    let report = eng.run(SimTime::from_millis(4));
    let mut s = String::new();
    let _ = writeln!(
        s,
        "packets={} marked={} cnps={} pauses={}",
        report.data_packets, report.marked_packets, report.cnps_sent, report.pfc_pauses
    );
    for f in &report.fcts {
        let _ = writeln!(
            s,
            "fct flow={} size={} start={:.12e} fct={:.12e}",
            f.flow, f.size_bytes, f.start_s, f.fct_s
        );
    }
    for (i, d) in report.delivered_bytes.iter().enumerate() {
        let _ = writeln!(s, "delivered[{i}]={d}");
    }
    for (link, trace) in report.queue_traces.iter() {
        for (t, q) in trace.points() {
            let _ = writeln!(s, "q link={} t={t:.12e} bytes={q:.12e}", link.0);
        }
    }
    let _ = writeln!(s, "bottleneck={}", bottleneck.0);
    s
}

fn cmd_determinism() -> ExitCode {
    let a = trace_bytes();
    let b = trace_bytes();
    if a == b {
        println!(
            "determinism: two runs byte-identical ({} trace bytes)",
            a.len()
        );
        ExitCode::SUCCESS
    } else {
        for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
            if la != lb {
                eprintln!("determinism: first divergence at trace line {i}:\n  A: {la}\n  B: {lb}");
                break;
            }
        }
        eprintln!("determinism: FAIL — two identically-seeded runs diverged");
        ExitCode::FAILURE
    }
}
