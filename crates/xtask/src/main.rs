//! `cargo run -p xtask -- <command>` — workspace tooling.
//!
//! Commands:
//!
//! * `lint [PATH...]` — run the simlint pass over `crates/*/src` (or over
//!   the given files, linted with every rule enabled). Exits non-zero if
//!   any violation is found.
//! * `selftest` — lint the seeded bad fixtures under `crates/xtask/fixtures`
//!   and verify each triggers exactly the rule named in its file name.
//! * `determinism` — run the packet simulator twice with the same seed and
//!   verify the rendered traces are byte-identical.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use desim::SimDuration;
use desim::SimTime;
use ecn_delay_core::scenarios::{single_switch_longlived, Protocol};
use netsim::EngineConfig;
use xtask::{lint_path_strict, lint_source, lint_workspace, scope_for, Rule};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(&args[1..]),
        Some("selftest") => cmd_selftest(),
        Some("determinism") => cmd_determinism(),
        _ => {
            eprintln!("usage: cargo run -p xtask -- <lint [PATH...] | selftest | determinism>");
            ExitCode::from(2)
        }
    }
}

/// Locate the workspace root: walk up from CWD until a dir containing
/// `crates/` and `Cargo.toml` is found.
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn cmd_lint(paths: &[String]) -> ExitCode {
    let violations = if paths.is_empty() {
        match lint_workspace(&workspace_root()) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("simlint: io error: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut out = Vec::new();
        for p in paths {
            match lint_path_strict(Path::new(p)) {
                Ok(v) => out.extend(v),
                Err(e) => {
                    eprintln!("simlint: {p}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        out
    };
    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        println!("simlint: clean");
        ExitCode::SUCCESS
    } else {
        println!("simlint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// Each fixture file is named `bad_<rule>.rs` and must trigger its rule at
/// least once when linted strictly.
fn cmd_selftest() -> ExitCode {
    let dir = workspace_root().join("crates/xtask/fixtures");
    let cases = [
        ("bad_hash_collections.rs", Rule::HashCollections),
        ("bad_wall_clock.rs", Rule::WallClock),
        ("bad_panic.rs", Rule::Panic),
        ("bad_no_unwrap_sim.rs", Rule::NoUnwrapSim),
        ("bad_index_literal.rs", Rule::IndexLiteral),
        ("bad_unit_suffix.rs", Rule::UnitSuffix),
        ("bad_thread_spawn.rs", Rule::ThreadSpawn),
    ];
    let mut failed = false;
    for (name, rule) in cases {
        let path = dir.join(name);
        match lint_path_strict(&path) {
            Ok(vs) => {
                let hits = vs.iter().filter(|v| v.rule == rule).count();
                if hits == 0 {
                    eprintln!("selftest FAIL: {name} did not trigger {}", rule.name());
                    failed = true;
                } else {
                    println!("selftest ok: {name} -> {} x{hits}", rule.name());
                }
            }
            Err(e) => {
                eprintln!("selftest FAIL: {name}: {e}");
                failed = true;
            }
        }
    }
    // The span-timer allowlist: the real `obs/src/span.rs` must trip
    // `wall-clock` under the strict (allowlist-free) scope — it genuinely
    // reads `Instant::now` — yet lint clean under its workspace scope,
    // proving the path-based exemption is what suppresses it.
    let span = Path::new("crates/obs/src/span.rs");
    let span_abs = workspace_root().join(span);
    match std::fs::read_to_string(&span_abs) {
        Ok(src) => {
            let strict_hits = lint_path_strict(&span_abs)
                .map(|vs| vs.iter().filter(|v| v.rule == Rule::WallClock).count())
                .unwrap_or(0);
            let scoped = scope_for(span).map_or_else(Vec::new, |s| lint_source(span, &src, s));
            if strict_hits == 0 {
                eprintln!("selftest FAIL: obs/src/span.rs no longer exercises wall-clock");
                failed = true;
            } else if !scoped.is_empty() {
                eprintln!("selftest FAIL: obs/src/span.rs not clean under workspace scope:");
                for v in &scoped {
                    eprintln!("  {v}");
                }
                failed = true;
            } else {
                println!(
                    "selftest ok: obs/src/span.rs -> wall-clock x{strict_hits} strict, exempt in scope"
                );
            }
        }
        Err(e) => {
            eprintln!("selftest FAIL: read {}: {e}", span_abs.display());
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("selftest: all fixtures trigger their rules");
        ExitCode::SUCCESS
    }
}

/// Render a run's observable outputs into a canonical byte string.
fn trace_bytes() -> String {
    use std::fmt::Write as _;
    let (mut eng, bottleneck) = single_switch_longlived(
        Protocol::Dcqcn,
        4,
        10e9,
        SimDuration::from_micros(4),
        EngineConfig::default(),
    );
    let report = eng.run(SimTime::from_millis(4));
    let mut s = String::new();
    let _ = writeln!(
        s,
        "packets={} marked={} cnps={} pauses={}",
        report.data_packets, report.marked_packets, report.cnps_sent, report.pfc_pauses
    );
    for f in &report.fcts {
        let _ = writeln!(
            s,
            "fct flow={} size={} start={:.12e} fct={:.12e}",
            f.flow, f.size_bytes, f.start_s, f.fct_s
        );
    }
    for (i, d) in report.delivered_bytes.iter().enumerate() {
        let _ = writeln!(s, "delivered[{i}]={d}");
    }
    for (link, trace) in report.queue_traces.iter() {
        for (t, q) in trace.points() {
            let _ = writeln!(s, "q link={} t={t:.12e} bytes={q:.12e}", link.0);
        }
    }
    let _ = writeln!(s, "bottleneck={}", bottleneck.0);
    s
}

fn cmd_determinism() -> ExitCode {
    let a = trace_bytes();
    let b = trace_bytes();
    if a == b {
        println!(
            "determinism: two runs byte-identical ({} trace bytes)",
            a.len()
        );
        ExitCode::SUCCESS
    } else {
        for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
            if la != lb {
                eprintln!("determinism: first divergence at trace line {i}:\n  A: {la}\n  B: {lb}");
                break;
            }
        }
        eprintln!("determinism: FAIL — two identically-seeded runs diverged");
        ExitCode::FAILURE
    }
}
