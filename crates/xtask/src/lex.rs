//! Hand-rolled Rust token stream — the substrate every simlint rule runs on.
//!
//! The PR 1 scrubber blanked strings/comments per *line* and let rules grep
//! the residue; that breaks structurally on multi-line strings, nested block
//! comments and `r#"…"#` forms, and it cannot express flow. This lexer
//! produces a real token sequence — identifiers, literals with suffixes,
//! multi-char operators, comments, string/char literals — each carrying a
//! 1-based `(line, col)` span and the brace-nesting depth at its position.
//! It is a lexer, not a parser: good enough to drive token-pattern rules and
//! the intraprocedural dataflow passes, with zero external dependencies
//! (workspace policy).
//!
//! Fidelity notes (deliberate simplifications, safe for linting):
//! * keywords are plain [`Kind::Ident`] tokens — rules match on text;
//! * raw identifiers `r#type` lex as the bare identifier;
//! * `>>`/`<<` are shift tokens even inside generics — consumers that count
//!   angle nesting count the *characters* of punct tokens instead.

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal (any base), suffix included in the text.
    Int,
    /// Float literal, suffix included in the text.
    Float,
    /// String literal (`"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`), quotes
    /// and contents included; may span lines.
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// `// …` comment, text to end of line.
    LineComment,
    /// `/* … */` comment (nesting handled); may span lines.
    BlockComment,
    /// Operator or delimiter; multi-char operators are single tokens.
    Punct,
}

/// One token with its source span and nesting context.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Lexical class.
    pub kind: Kind,
    /// Source text (see [`Kind`] for per-class conventions).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based character column of the token's first character.
    pub col: u32,
    /// Brace (`{}`) nesting depth *outside* the token: an opening `{` and
    /// its matching `}` carry the same depth.
    pub depth: u32,
}

/// Multi-character operators, longest first so maximal munch wins.
const OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
    depth: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Advance one char, maintaining line/col.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: Kind, text: String, line: u32, col: u32, depth: u32) {
        self.out.push(Tok {
            kind,
            text,
            line,
            col,
            depth,
        });
    }

    /// Consume `n` chars into a String.
    fn take(&mut self, n: usize) -> String {
        let mut s = String::new();
        for _ in 0..n {
            if let Some(c) = self.bump() {
                s.push(c);
            }
        }
        s
    }

    /// Consume a `//` comment to end of line.
    fn line_comment(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            s.push(c);
            self.bump();
        }
        s
    }

    /// Consume a `/* … */` comment with nesting.
    fn block_comment(&mut self) -> String {
        let mut s = self.take(2); // the opening /*
        let mut level = 1usize;
        while level > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('*'), Some('/')) => {
                    level -= 1;
                    s.push_str(&self.take(2));
                }
                (Some('/'), Some('*')) => {
                    level += 1;
                    s.push_str(&self.take(2));
                }
                (Some(_), _) => {
                    s.push_str(&self.take(1));
                }
                (None, _) => break,
            }
        }
        s
    }

    /// Consume a plain `"…"` string (escapes honored, may span lines).
    fn quoted_string(&mut self, mut s: String) -> String {
        s.push_str(&self.take(1)); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                s.push_str(&self.take(2));
            } else if c == '"' {
                s.push_str(&self.take(1));
                break;
            } else {
                s.push_str(&self.take(1));
            }
        }
        s
    }

    /// Consume a raw string `r#*"…"#*` given the number of hashes; the
    /// prefix (`r`/`br` + hashes + quote) has already been consumed into `s`.
    fn raw_string_body(&mut self, mut s: String, hashes: usize) -> String {
        loop {
            match self.peek(0) {
                None => break,
                Some('"') => {
                    let closes = (0..hashes).all(|k| self.peek(1 + k) == Some('#'));
                    s.push_str(&self.take(1 + if closes { hashes } else { 0 }));
                    if closes {
                        break;
                    }
                }
                Some(_) => s.push_str(&self.take(1)),
            }
        }
        s
    }

    /// Try to lex a raw/byte string form starting at the current `r`/`b`.
    /// Returns `None` if the lookahead is not a string prefix.
    fn try_prefixed_string(&mut self) -> Option<(Kind, String)> {
        let c0 = self.peek(0)?;
        // Determine prefix length: r, b, br.
        let (prefix_len, raw_ok) = match c0 {
            'r' => (1, true),
            'b' => {
                if self.peek(1) == Some('r') {
                    (2, true)
                } else {
                    (1, false)
                }
            }
            _ => return None,
        };
        let after = self.peek(prefix_len);
        match after {
            Some('"') => {
                let s = self.take(prefix_len);
                if raw_ok && prefix_len >= 1 && (c0 == 'r' || prefix_len == 2) {
                    // r"…" / br"…": raw, zero hashes.
                    let mut s = s;
                    s.push_str(&self.take(1));
                    Some((Kind::Str, self.raw_string_body(s, 0)))
                } else {
                    // b"…": ordinary escapes.
                    Some((Kind::Str, self.quoted_string(s)))
                }
            }
            Some('#') if raw_ok => {
                // Count hashes; require a quote after them, else it is a raw
                // identifier (`r#type`) or plain ident followed by `#`.
                let mut hashes = 0;
                while self.peek(prefix_len + hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(prefix_len + hashes) == Some('"') {
                    let s = self.take(prefix_len + hashes + 1);
                    Some((Kind::Str, self.raw_string_body(s, hashes)))
                } else if c0 == 'r' && hashes == 1 {
                    // Raw identifier r#ident: skip the prefix, lex the ident.
                    self.take(2);
                    let mut s = String::new();
                    while self.peek(0).is_some_and(is_ident_continue) {
                        s.push_str(&self.take(1));
                    }
                    Some((Kind::Ident, s))
                } else {
                    None
                }
            }
            Some('\'') if c0 == 'b' && prefix_len == 1 => {
                // Byte char b'x'.
                let mut s = self.take(2); // b'
                while let Some(c) = self.peek(0) {
                    if c == '\\' {
                        s.push_str(&self.take(2));
                    } else {
                        s.push_str(&self.take(1));
                        if c == '\'' {
                            break;
                        }
                    }
                }
                Some((Kind::Char, s))
            }
            _ => None,
        }
    }

    /// Lex a number starting at an ASCII digit. `after_dot` means the
    /// literal directly follows a `.` punct (tuple index position `a.0.1`):
    /// the fractional part must not be consumed there.
    fn number(&mut self, after_dot: bool) -> (Kind, String) {
        let mut s = String::new();
        let mut float = false;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b')) {
            // Radix literal: consume prefix then alphanumerics/underscores
            // (the suffix, if any, merges into the text — fine for linting).
            s.push_str(&self.take(2));
            while self.peek(0).is_some_and(is_ident_continue) {
                s.push_str(&self.take(1));
            }
            return (Kind::Int, s);
        }
        while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
            s.push_str(&self.take(1));
        }
        if self.peek(0) == Some('.') && !after_dot {
            match self.peek(1) {
                // `1.5` — fractional part.
                Some(c) if c.is_ascii_digit() => {
                    float = true;
                    s.push_str(&self.take(1));
                    while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                        s.push_str(&self.take(1));
                    }
                }
                // `1.method()` / `0..n` — the dot is not ours.
                Some(c) if is_ident_start(c) || c == '.' => {}
                // `1.` — trailing-dot float.
                _ => {
                    float = true;
                    s.push_str(&self.take(1));
                }
            }
        }
        if matches!(self.peek(0), Some('e' | 'E'))
            && (self.peek(1).is_some_and(|c| c.is_ascii_digit())
                || (matches!(self.peek(1), Some('+' | '-'))
                    && self.peek(2).is_some_and(|c| c.is_ascii_digit())))
        {
            float = true;
            s.push_str(&self.take(1));
            if matches!(self.peek(0), Some('+' | '-')) {
                s.push_str(&self.take(1));
            }
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                s.push_str(&self.take(1));
            }
        }
        // Type suffix (f64, u32, usize, …).
        let mut suffix = String::new();
        while self.peek(0).is_some_and(is_ident_continue) {
            suffix.push_str(&self.take(1));
        }
        if suffix.starts_with('f') {
            float = true;
        }
        s.push_str(&suffix);
        (if float { Kind::Float } else { Kind::Int }, s)
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            if c.is_whitespace() {
                self.bump();
                continue;
            }
            let (line, col, depth) = (self.line, self.col, self.depth);
            // Comments.
            if c == '/' && self.peek(1) == Some('/') {
                let text = self.line_comment();
                self.push(Kind::LineComment, text, line, col, depth);
                continue;
            }
            if c == '/' && self.peek(1) == Some('*') {
                let text = self.block_comment();
                self.push(Kind::BlockComment, text, line, col, depth);
                continue;
            }
            // Raw/byte strings and raw identifiers share the `r`/`b` start.
            if (c == 'r' || c == 'b') && self.peek(1).is_some() {
                if let Some((kind, text)) = self.try_prefixed_string() {
                    self.push(kind, text, line, col, depth);
                    continue;
                }
            }
            if is_ident_start(c) {
                let mut s = String::new();
                while self.peek(0).is_some_and(is_ident_continue) {
                    s.push_str(&self.take(1));
                }
                self.push(Kind::Ident, s, line, col, depth);
                continue;
            }
            if c.is_ascii_digit() {
                let after_dot = self
                    .out
                    .last()
                    .is_some_and(|t| t.kind == Kind::Punct && t.text == ".");
                let (kind, text) = self.number(after_dot);
                self.push(kind, text, line, col, depth);
                continue;
            }
            if c == '"' {
                let text = self.quoted_string(String::new());
                self.push(Kind::Str, text, line, col, depth);
                continue;
            }
            if c == '\'' {
                // Lifetime `'a` vs char literal `'a'` / `'\n'`.
                let next = self.peek(1);
                if next == Some('\\') {
                    // Escaped char literal.
                    let mut s = self.take(2);
                    while let Some(ch) = self.peek(0) {
                        s.push_str(&self.take(1));
                        if ch == '\'' {
                            break;
                        }
                    }
                    self.push(Kind::Char, s, line, col, depth);
                } else if next.is_some_and(is_ident_start) && self.peek(2) != Some('\'') {
                    let mut s = self.take(1);
                    while self.peek(0).is_some_and(is_ident_continue) {
                        s.push_str(&self.take(1));
                    }
                    self.push(Kind::Lifetime, s, line, col, depth);
                } else {
                    // 'x' (or a stray quote — consume defensively).
                    let mut s = self.take(1);
                    let mut took = 0;
                    while let Some(ch) = self.peek(0) {
                        s.push_str(&self.take(1));
                        took += 1;
                        if ch == '\'' || took > 2 {
                            break;
                        }
                    }
                    self.push(Kind::Char, s, line, col, depth);
                }
                continue;
            }
            // Punctuation: maximal-munch multi-char operators first.
            let mut matched = false;
            for op in OPS {
                if op
                    .chars()
                    .enumerate()
                    .all(|(k, oc)| self.peek(k) == Some(oc))
                {
                    let text = self.take(op.chars().count());
                    self.push(Kind::Punct, text, line, col, depth);
                    matched = true;
                    break;
                }
            }
            if matched {
                continue;
            }
            if c == '{' {
                self.depth += 1;
            } else if c == '}' {
                self.depth = self.depth.saturating_sub(1);
            }
            let d = if c == '{' { depth } else { self.depth };
            let text = self.take(1);
            self.push(Kind::Punct, text, line, col, d);
        }
        self.out
    }
}

/// Tokenize Rust source. Never fails: unrecognized bytes become single-char
/// [`Kind::Punct`] tokens, so the passes degrade instead of aborting.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
        depth: 0,
        out: Vec::new(),
    }
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_numbers_ops() {
        let ts = kinds("let x_us = 1.5e-3 + y[0];");
        assert_eq!(ts[0], (Kind::Ident, "let".into()));
        assert_eq!(ts[1], (Kind::Ident, "x_us".into()));
        assert_eq!(ts[2], (Kind::Punct, "=".into()));
        assert_eq!(ts[3], (Kind::Float, "1.5e-3".into()));
        assert_eq!(ts[4], (Kind::Punct, "+".into()));
        assert_eq!(ts[6], (Kind::Punct, "[".into()));
        assert_eq!(ts[7], (Kind::Int, "0".into()));
    }

    #[test]
    fn tuple_index_is_not_a_float() {
        let ts = kinds("a.0.1");
        assert_eq!(
            ts,
            vec![
                (Kind::Ident, "a".into()),
                (Kind::Punct, ".".into()),
                (Kind::Int, "0".into()),
                (Kind::Punct, ".".into()),
                (Kind::Int, "1".into()),
            ]
        );
    }

    #[test]
    fn trailing_dot_float_and_method_on_literal() {
        assert_eq!(kinds("1.")[0], (Kind::Float, "1.".into()));
        let ts = kinds("1.max(2)");
        assert_eq!(ts[0], (Kind::Int, "1".into()));
        assert_eq!(ts[1], (Kind::Punct, ".".into()));
        assert_eq!(ts[2], (Kind::Ident, "max".into()));
    }

    #[test]
    fn float_suffixes() {
        assert_eq!(kinds("1f64")[0], (Kind::Float, "1f64".into()));
        assert_eq!(kinds("10_000u64")[0], (Kind::Int, "10_000u64".into()));
        assert_eq!(kinds("0xFF")[0], (Kind::Int, "0xFF".into()));
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        let ts = kinds("let s = \"HashMap .unwrap() // not a comment\";");
        assert!(ts.iter().all(|(k, t)| *k != Kind::Ident || t != "HashMap"));
        assert_eq!(ts.iter().filter(|(k, _)| *k == Kind::Str).count(), 1);
    }

    #[test]
    fn multiline_and_raw_strings() {
        let src =
            "let a = \"line1\nline2\";\nlet b = r#\"raw \"inner\" body\n.unwrap()\"#;\nx.unwrap();";
        let ts = lex(src);
        // Exactly one real unwrap (after both strings close).
        let unwraps = ts
            .iter()
            .filter(|t| t.kind == Kind::Ident && t.text == "unwrap")
            .count();
        assert_eq!(unwraps, 1);
        let last = ts.iter().rfind(|t| t.text == "unwrap").unwrap();
        assert_eq!(last.line, 5);
    }

    #[test]
    fn nested_block_comments() {
        let ts = kinds("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(ts[0].0, Kind::BlockComment);
        assert_eq!(ts[1], (Kind::Ident, "fn".into()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ts = kinds("&'a str; let c = 'x'; let n = '\\n';");
        assert_eq!(ts[1], (Kind::Lifetime, "'a".into()));
        assert!(ts.iter().any(|(k, t)| *k == Kind::Char && t == "'x'"));
        assert!(ts.iter().any(|(k, t)| *k == Kind::Char && t == "'\\n'"));
    }

    #[test]
    fn byte_and_raw_forms() {
        assert_eq!(kinds("b\"bytes\"")[0].0, Kind::Str);
        assert_eq!(kinds("br#\"raw bytes\"#")[0].0, Kind::Str);
        assert_eq!(kinds("b'x'")[0].0, Kind::Char);
        // Raw identifier lexes as the bare ident.
        assert_eq!(kinds("r#type")[0], (Kind::Ident, "type".into()));
    }

    #[test]
    fn multichar_ops_are_single_tokens() {
        let ts = kinds("a == b != c <= d >= e && f || g :: h -> i => j ..= k");
        let ops: Vec<&str> = ts
            .iter()
            .filter(|(k, _)| *k == Kind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(
            ops,
            vec!["==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..="]
        );
    }

    #[test]
    fn line_col_spans_are_accurate() {
        let ts = lex("fn f() {\n    x.unwrap();\n}\n");
        let unwrap = ts
            .iter()
            .find(|t| t.kind == Kind::Ident && t.text == "unwrap")
            .unwrap();
        assert_eq!((unwrap.line, unwrap.col), (2, 7));
    }

    #[test]
    fn brace_depth_matches_pairs() {
        let ts = lex("fn f() { if x { y(); } }");
        let opens: Vec<u32> = ts
            .iter()
            .filter(|t| t.text == "{")
            .map(|t| t.depth)
            .collect();
        let closes: Vec<u32> = ts
            .iter()
            .filter(|t| t.text == "}")
            .map(|t| t.depth)
            .collect();
        assert_eq!(opens, vec![0, 1]);
        assert_eq!(closes, vec![1, 0]);
    }

    #[test]
    fn comments_carry_text_for_directives() {
        let ts = lex("x(); // simlint: allow(panic) — why\n");
        let c = ts.iter().find(|t| t.kind == Kind::LineComment).unwrap();
        assert!(c.text.contains("simlint: allow(panic)"));
        assert_eq!(c.line, 1);
    }
}
