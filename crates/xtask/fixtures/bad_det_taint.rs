//! Fixture: determinism-taint must catch wall-clock readings steering the
//! simulation — written into sim state or handed to the event queue.

pub struct Pacer {
    pub next_fire_s: f64,
}

impl Pacer {
    pub fn contaminate(&mut self) {
        let now_s = std::time::Instant::now().elapsed().as_secs_f64();
        self.next_fire_s = now_s;
    }
}

pub fn reschedule(q: &mut EventQueue) {
    let skew_s = std::time::Instant::now().elapsed().as_secs_f64();
    q.schedule(skew_s, 7);
}
