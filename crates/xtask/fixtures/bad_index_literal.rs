//! Seeded-bad fixture: literal index with no bound-justifying comment.

pub fn head(xs: &[u64]) -> u64 {
    xs[0]
}
