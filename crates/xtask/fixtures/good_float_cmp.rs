//! Fixture: `==` inside an approved epsilon helper is the implementation of
//! float comparison, not a violation; call sites route through the helper.

pub fn approx_eq(a: f64, b: f64, eps: f64) -> bool {
    if a == b {
        return true;
    }
    (a - b).abs() <= eps
}

pub fn converged(rate_bps: f64, target_bps: f64) -> bool {
    approx_eq(rate_bps, target_bps, 1e-6)
}
