//! Seeded-bad fixture: simulation state in a `HashMap` (unspecified
//! iteration order → nondeterministic event ordering).

use std::collections::HashMap;

pub struct QueueState {
    pub depths: HashMap<u32, f64>,
}
