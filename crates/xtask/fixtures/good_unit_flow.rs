//! Fixture: conversions routed through sanctioned `*_to_*` helpers
//! (the `models::units` naming convention) re-type the value, so downstream
//! arithmetic is unit-consistent and must produce zero unit-flow findings.

pub fn us_to_s(v_us: f64) -> f64 {
    v_us * 1e-6
}

pub fn total_wait_s(delay_us: f64, timeout_s: f64) -> f64 {
    let delay_s = us_to_s(delay_us);
    delay_s + timeout_s
}

pub fn headroom_s(deadline_s: f64, elapsed_ms: f64) -> f64 {
    let elapsed_s = ms_to_s(elapsed_ms);
    deadline_s - elapsed_s
}

pub fn ms_to_s(v_ms: f64) -> f64 {
    v_ms * 1e-3
}

pub fn feedback_delay_s(queue_pkts: f64, capacity_pps: f64, prop_s: f64) -> f64 {
    // `1.0 / capacity_pps` is a *period*: division inverts the unit, so the
    // sum below is seconds + seconds, not pps + seconds.
    queue_pkts / capacity_pps + 1.0 / capacity_pps + prop_s
}

pub fn lane_of(component: usize, lane: usize, stride: usize) -> usize {
    component * stride + lane
}

pub fn batch_stride(lanes: usize) -> usize {
    lanes
}

pub fn lane_rate_mbps(block_mbps: &[f64], flow: usize, lane: usize, lanes: usize) -> f64 {
    // A strided SoA read addresses through the batch accessors but keeps
    // the block's unit: `_mbps` in, `_mbps` out, and unitless index
    // arithmetic around `lane_of`/`batch_stride` stays quiet.
    let idx = lane_of(flow, lane, batch_stride(lanes));
    let rate_mbps = if idx < block_mbps.len() {
        block_mbps[idx]
    } else {
        0.0
    };
    rate_mbps
}
