//! Fixture: float-cmp must fire on exact `==` / `!=` over floating-point
//! values outside the approved epsilon helpers.

pub fn converged(rate_bps: f64, target_bps: f64) -> bool {
    rate_bps == target_bps
}

pub fn still_moving(gain: f64) -> bool {
    gain != 0.0
}
