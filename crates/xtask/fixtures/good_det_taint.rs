//! Fixture: measure-only wall-clock flows (`obs::span` style) are
//! sanctioned — readings may be aggregated into profiling counters and
//! reported, but never written into simulation state. Zero determinism-taint
//! findings expected (the wall-clock *source* rule is path-exempted for the
//! real span module; this fixture only checks the dataflow pass).

use std::sync::atomic::{AtomicU64, Ordering};

pub fn measure(counter: &AtomicU64) -> u64 {
    let start = std::time::Instant::now();
    let dt_ns = start.elapsed().as_nanos() as u64;
    counter.fetch_add(dt_ns, Ordering::Relaxed);
    dt_ns
}
