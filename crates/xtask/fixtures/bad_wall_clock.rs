//! Seeded-bad fixture: wall-clock time inside simulation logic.

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
