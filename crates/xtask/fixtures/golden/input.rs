//! Golden input: exercises a spread of rules so the JSON report shape is
//! pinned byte-for-byte by `tests/golden.rs`.

use std::collections::HashMap;

pub fn lookup(xs: &[u64]) -> u64 {
    xs[3]
}

pub fn mix(delay_us: f64, timeout_s: f64) -> bool {
    delay_us == timeout_s
}

// simlint: allow(panic) — stale on purpose: nothing below unwraps
pub fn quiet() -> u32 {
    7
}
