//! Fixture: crash-safe write discipline that must stay quiet under
//! `no-raw-fs-write` — the sanctioned atomic writer, read-only file use,
//! and test-module scratch files.

use std::fs;
use std::path::Path;

fn persist_record(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    // The sanctioned surface: temp + fsync + rename.
    store::atomic::write_atomic(path, bytes)
}

fn load_record(path: &Path) -> std::io::Result<Vec<u8>> {
    // Reads are fine; only the write side can tear.
    fs::read(path)
}

fn open_for_reading(path: &Path) -> std::io::Result<fs::File> {
    // `File::open` is not `File::create`.
    fs::File::open(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_files_in_tests_have_no_durability_contract() {
        let p = std::env::temp_dir().join("fixture_scratch");
        std::fs::write(&p, b"scratch").ok();
        assert!(load_record(&p).is_ok());
    }
}
