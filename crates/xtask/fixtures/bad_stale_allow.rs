//! Fixture: an allow directive that suppresses nothing is itself a finding —
//! it silently rots as the code under it changes.

// simlint: allow(hash-collections) — nothing below actually uses one
pub fn innocuous() -> u32 {
    42
}
