//! Seeded-bad fixture: dimensioned `f64` parameters, struct fields, and
//! `pub fn` return types with no unit suffix.

pub fn configure(rate: f64, delay: f64) -> f64 {
    rate * delay
}

pub struct LinkState {
    pub queue_depth: f64,
    thresh: f64,
}

pub fn drain_time(queue_bytes: f64, rate_bps: f64) -> f64 {
    queue_bytes / (rate_bps / 8.0)
}
