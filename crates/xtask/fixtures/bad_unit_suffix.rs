//! Seeded-bad fixture: dimensioned `f64` parameter with no unit suffix.

pub fn configure(rate: f64, delay: f64) -> f64 {
    rate * delay
}
