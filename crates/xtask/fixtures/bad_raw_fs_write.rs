//! Fixture: bare filesystem writes that tear under crash — both banned
//! spellings, plus the fully-qualified forms.

use std::fs;
use std::fs::File;
use std::io::Write as _;

fn dump_report(path: &std::path::Path, body: &str) {
    fs::write(path, body).ok();
}

fn dump_report_qualified(path: &std::path::Path, body: &str) {
    std::fs::write(path, body).ok();
}

fn open_sink(path: &std::path::Path) -> std::io::Result<File> {
    File::create(path)
}

fn open_sink_qualified(path: &std::path::Path, body: &[u8]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(body)
}
