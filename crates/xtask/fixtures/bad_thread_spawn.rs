//! Seeded-bad fixture: ad-hoc threading outside `desim::par` (result order
//! would depend on OS scheduling).

pub fn sweep(jobs: Vec<u64>) -> Vec<u64> {
    let mut handles = Vec::new();
    for j in jobs {
        handles.push(std::thread::spawn(move || j * j));
    }
    handles.into_iter().map(|h| h.join().unwrap_or(0)).collect()
}
