//! Seeded-bad fixture: `.unwrap()` / `.expect(` in simulation-crate code.
//!
//! Each site carries a `panic`-only allow, so the plain `panic` rule is
//! silenced — exactly one rule, `no-unwrap-sim`, must fire here. Sim crates
//! degrade through `faults::SimError`; a documented panic is not enough.

pub fn head(xs: &[u64]) -> u64 {
    // simlint: allow(panic) — fixture documents the invariant, sim rule still fires
    xs.first().copied().unwrap()
}

pub fn tail(xs: &[u64]) -> u64 {
    // simlint: allow(panic) — fixture documents the invariant, sim rule still fires
    xs.last().copied().expect("non-empty")
}
