//! Fixture: unit-flow must catch cross-unit arithmetic, comparisons, and
//! compound assignments that bypass `models::units` conversions.

pub fn total_wait(delay_us: f64, timeout_s: f64) -> f64 {
    delay_us + timeout_s
}

pub fn overdue(elapsed_ms: f64, deadline_s: f64) -> bool {
    elapsed_ms >= deadline_s
}

pub fn mixed_accumulate(rate_bps: f64, budget_pps: f64) -> f64 {
    let mut acc_bps = rate_bps;
    acc_bps += budget_pps;
    acc_bps
}

pub fn lane_of(component: usize, lane: usize, stride: usize) -> usize {
    component * stride + lane
}

pub fn skewed_lane_read(block: &[f64], lane: usize, stride: usize, skew_s: f64) -> f64 {
    // Physical time mixed into SoA address arithmetic: `lane_of` yields a
    // lane index, `skew_s` is seconds.
    block[lane_of(0, lane, stride) + skew_s as usize]
}

pub fn lane_index_as_queue(lane: usize, stride: usize) -> f64 {
    // A lane address stored in a unit-suffixed local.
    let depth_kb = lane_of(2, lane, stride) as f64;
    depth_kb
}

pub fn strided_read_mislabeled(rates_mbps: &[f64], flow: usize, lane: usize, stride: usize) -> f64 {
    // The strided read keeps the block's `_mbps`; binding it `_kb` must fire.
    let q_kb = rates_mbps[lane_of(flow, lane, stride)];
    q_kb
}
