//! Fixture: unit-flow must catch cross-unit arithmetic, comparisons, and
//! compound assignments that bypass `models::units` conversions.

pub fn total_wait(delay_us: f64, timeout_s: f64) -> f64 {
    delay_us + timeout_s
}

pub fn overdue(elapsed_ms: f64, deadline_s: f64) -> bool {
    elapsed_ms >= deadline_s
}

pub fn mixed_accumulate(rate_bps: f64, budget_pps: f64) -> f64 {
    let mut acc_bps = rate_bps;
    acc_bps += budget_pps;
    acc_bps
}
