//! Parser for `--faults <spec.json>` schedule documents.
//!
//! The workspace is dependency-free and the in-tree JSON support
//! (`ecn_delay_core::json`) is emit-only, so this module carries a minimal
//! recursive-descent JSON reader — just enough for the flat spec schema,
//! with byte-offset diagnostics surfaced as [`SimError::InvalidSpec`].
//!
//! # Schema
//!
//! ```json
//! {
//!   "seed": 7,
//!   "events": [
//!     {"at_s": 0.010, "kind": "link_flap",   "link": 1, "down_s": 0.002},
//!     {"at_s": 0.0,   "kind": "packet_loss", "link": 0, "probability": 0.01, "duration_s": 0.05},
//!     {"at_s": 0.0,   "kind": "cnp_loss",    "link": 2, "probability": 0.2,  "duration_s": 0.05},
//!     {"at_s": 0.0,   "kind": "rtt_jitter",  "link": 1, "sigma_s": 1e-5,    "duration_s": 0.05},
//!     {"at_s": 0.02,  "kind": "delay_spike", "link": 1, "extra_s": 1e-4,    "duration_s": 0.005},
//!     {"at_s": 0.01,  "kind": "pause_storm", "link": 1, "period_s": 1e-3,
//!      "pause_frac": 0.5, "duration_s": 0.02},
//!     {"at_s": 0.05,  "kind": "perturb_kmax", "scale": 0.25},
//!     {"at_s": 0.05,  "kind": "perturb_r_ai", "scale": 4.0}
//!   ]
//! }
//! ```
//!
//! `seed` is optional (default 1). Every event requires `at_s` and `kind`;
//! unknown kinds and unknown keys are rejected so typos fail loudly instead
//! of silently injecting nothing.

use crate::error::SimError;
use crate::schedule::{FaultKind, FaultSchedule, ParamTarget};

/// Parse a fault-schedule spec document.
///
/// Returns a schedule that has passed field-level checks only; call
/// [`FaultSchedule::validate`] with the target topology's link count before
/// installing it.
pub fn parse_schedule(text: &str) -> Result<FaultSchedule, SimError> {
    let value = parse_document(text)?;
    let top = value.as_object("top level")?;
    let mut seed = 1u64;
    let mut events_val = None;
    for (key, v) in top {
        match key.as_str() {
            "seed" => {
                let n = v.as_number("seed")?;
                if !(n.is_finite() && n >= 0.0 && n.fract() == 0.0) {
                    return Err(SimError::spec(format!(
                        "seed must be a non-negative integer, got {n}"
                    )));
                }
                seed = n as u64;
            }
            "events" => events_val = Some(v),
            other => return Err(SimError::spec(format!("unknown top-level key {other:?}"))),
        }
    }
    let Some(events_val) = events_val else {
        return Err(SimError::spec("missing required key \"events\""));
    };
    let mut schedule = FaultSchedule::new(seed);
    for (i, ev) in events_val.as_array("events")?.iter().enumerate() {
        let (at_s, kind) = parse_event(ev).map_err(|e| match e {
            SimError::InvalidSpec { detail } => SimError::spec(format!("event {i}: {detail}")),
            other => other,
        })?;
        schedule = schedule.push(at_s, kind);
    }
    Ok(schedule)
}

/// Decode one event object into `(at_s, kind)`.
fn parse_event(v: &Value) -> Result<(f64, FaultKind), SimError> {
    let obj = v.as_object("event")?;
    let kind_name = obj.get_str("kind")?;
    let at_s = obj.get_num("at_s")?;
    // Per-kind field sets; `known` lists every accepted key so extras are
    // rejected.
    let kind = match kind_name {
        "link_flap" => {
            obj.only(&["kind", "at_s", "link", "down_s"])?;
            FaultKind::LinkFlap {
                link: obj.get_link()?,
                down_s: obj.get_num("down_s")?,
            }
        }
        "packet_loss" => {
            obj.only(&["kind", "at_s", "link", "probability", "duration_s"])?;
            FaultKind::PacketLoss {
                link: obj.get_link()?,
                probability: obj.get_num("probability")?,
                duration_s: obj.get_num("duration_s")?,
            }
        }
        "cnp_loss" => {
            obj.only(&["kind", "at_s", "link", "probability", "duration_s"])?;
            FaultKind::CnpLoss {
                link: obj.get_link()?,
                probability: obj.get_num("probability")?,
                duration_s: obj.get_num("duration_s")?,
            }
        }
        "rtt_jitter" => {
            obj.only(&["kind", "at_s", "link", "sigma_s", "duration_s"])?;
            FaultKind::RttJitter {
                link: obj.get_link()?,
                sigma_s: obj.get_num("sigma_s")?,
                duration_s: obj.get_num("duration_s")?,
            }
        }
        "delay_spike" => {
            obj.only(&["kind", "at_s", "link", "extra_s", "duration_s"])?;
            FaultKind::DelaySpike {
                link: obj.get_link()?,
                extra_s: obj.get_num("extra_s")?,
                duration_s: obj.get_num("duration_s")?,
            }
        }
        "pause_storm" => {
            obj.only(&[
                "kind",
                "at_s",
                "link",
                "period_s",
                "pause_frac",
                "duration_s",
            ])?;
            FaultKind::PauseStorm {
                link: obj.get_link()?,
                period_s: obj.get_num("period_s")?,
                pause_frac: obj.get_num("pause_frac")?,
                duration_s: obj.get_num("duration_s")?,
            }
        }
        "perturb_kmax" => {
            obj.only(&["kind", "at_s", "scale"])?;
            FaultKind::Perturb {
                target: ParamTarget::RedKmax,
                scale: obj.get_num("scale")?,
            }
        }
        "perturb_r_ai" => {
            obj.only(&["kind", "at_s", "scale"])?;
            FaultKind::Perturb {
                target: ParamTarget::CcRateIncrease,
                scale: obj.get_num("scale")?,
            }
        }
        other => {
            return Err(SimError::spec(format!(
                "unknown kind {other:?} (expected one of link_flap, packet_loss, cnp_loss, \
                 rtt_jitter, delay_spike, pause_storm, perturb_kmax, perturb_r_ai)"
            )))
        }
    };
    Ok((at_s, kind))
}

// ---------------------------------------------------------------------------
// Minimal JSON reader. Objects are ordered key/value vectors (no hash maps in
// simulation-adjacent code) — the spec schema has no duplicate-key use case,
// and duplicates are rejected.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Obj),
}

#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct Obj(Vec<(String, Value)>);

impl Value {
    pub(crate) fn as_object(&self, what: &str) -> Result<&Obj, SimError> {
        match self {
            Value::Obj(o) => Ok(o),
            _ => Err(SimError::spec(format!("{what} must be an object"))),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[Value], SimError> {
        match self {
            Value::Arr(a) => Ok(a),
            _ => Err(SimError::spec(format!("{what} must be an array"))),
        }
    }

    fn as_number(&self, what: &str) -> Result<f64, SimError> {
        match self {
            Value::Num(n) => Ok(*n),
            _ => Err(SimError::spec(format!("{what} must be a number"))),
        }
    }
}

impl<'a> IntoIterator for &'a Obj {
    type Item = &'a (String, Value);
    type IntoIter = std::slice::Iter<'a, (String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl Obj {
    pub(crate) fn get(&self, key: &str) -> Option<&Value> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub(crate) fn get_num(&self, key: &str) -> Result<f64, SimError> {
        match self.get(key) {
            Some(v) => v.as_number(key),
            None => Err(SimError::spec(format!("missing required key {key:?}"))),
        }
    }

    pub(crate) fn get_str(&self, key: &str) -> Result<&str, SimError> {
        match self.get(key) {
            Some(Value::Str(s)) => Ok(s),
            Some(_) => Err(SimError::spec(format!("{key} must be a string"))),
            None => Err(SimError::spec(format!("missing required key {key:?}"))),
        }
    }

    fn get_link(&self) -> Result<usize, SimError> {
        let n = self.get_num("link")?;
        // simlint: allow(float-cmp) — exact-by-design: fract()==0.0 is the definition of integrality
        if !(n.is_finite() && n >= 0.0 && n.fract() == 0.0) {
            return Err(SimError::spec(format!(
                "link must be a non-negative integer, got {n}"
            )));
        }
        Ok(n as usize)
    }

    /// Reject keys outside `known`.
    fn only(&self, known: &[&str]) -> Result<(), SimError> {
        for (k, _) in &self.0 {
            if !known.contains(&k.as_str()) {
                return Err(SimError::spec(format!("unknown key {k:?}")));
            }
        }
        Ok(())
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

pub(crate) fn parse_document(text: &str) -> Result<Value, SimError> {
    let mut r = Reader {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = r.value()?;
    r.skip_ws();
    if r.pos != r.bytes.len() {
        return Err(r.err("trailing characters after document"));
    }
    Ok(v)
}

impl<'a> Reader<'a> {
    fn err(&self, what: &str) -> SimError {
        SimError::spec(format!("{what} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), SimError> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, SimError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, SimError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self) -> Result<Value, SimError> {
        self.expect_byte(b'{')?;
        let mut entries: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(Obj(entries)));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate key {key:?}")));
            }
            self.expect_byte(b':')?;
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(Obj(entries))),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, SimError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, SimError> {
        if self.bump() != Some(b'"') {
            return Err(self.err("expected string"));
        }
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    // \b, \f, \uXXXX are not needed by the spec schema.
                    _ => return Err(self.err("unsupported escape")),
                },
                Some(c) if c < 0x80 => out.push(c as char),
                Some(_) => {
                    // Re-read the full UTF-8 scalar from the source slice.
                    let start = self.pos - 1;
                    let rest = &self.bytes[start..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let Some(ch) = s.chars().next() else {
                        return Err(self.err("unterminated string"));
                    };
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, SimError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Value::Num(n)),
            _ => Err(self.err(&format!("invalid number {text:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = r#"{
      "seed": 7,
      "events": [
        {"at_s": 0.010, "kind": "link_flap",   "link": 1, "down_s": 0.002},
        {"at_s": 0.0,   "kind": "packet_loss", "link": 0, "probability": 0.01, "duration_s": 0.05},
        {"at_s": 0.0,   "kind": "cnp_loss",    "link": 2, "probability": 0.2,  "duration_s": 0.05},
        {"at_s": 0.0,   "kind": "rtt_jitter",  "link": 1, "sigma_s": 1e-5,     "duration_s": 0.05},
        {"at_s": 0.02,  "kind": "delay_spike", "link": 1, "extra_s": 1e-4,     "duration_s": 0.005},
        {"at_s": 0.01,  "kind": "pause_storm", "link": 1, "period_s": 1e-3,
         "pause_frac": 0.5, "duration_s": 0.02},
        {"at_s": 0.05,  "kind": "perturb_kmax", "scale": 0.25},
        {"at_s": 0.05,  "kind": "perturb_r_ai", "scale": 4.0}
      ]
    }"#;

    #[test]
    fn full_spec_parses_every_kind() {
        let s = parse_schedule(FULL).expect("parses");
        assert_eq!(s.seed, 7);
        assert_eq!(s.len(), 8);
        assert!(s.validate(3).is_ok());
        assert_eq!(
            s.events[0].kind,
            FaultKind::LinkFlap {
                link: 1,
                down_s: 0.002
            }
        );
        assert_eq!(
            s.events[7].kind,
            FaultKind::Perturb {
                target: ParamTarget::CcRateIncrease,
                scale: 4.0
            }
        );
    }

    #[test]
    fn seed_defaults_to_one() {
        let s = parse_schedule(r#"{"events": []}"#).expect("parses");
        assert_eq!(s.seed, 1);
        assert!(s.is_empty());
    }

    #[test]
    fn malformed_documents_are_structured_errors() {
        let cases: &[(&str, &str)] = &[
            ("", "expected a JSON value"),
            ("[1, 2]", "must be an object"),
            ("{\"events\": []} x", "trailing characters"),
            ("{\"seed\": 1}", "missing required key \"events\""),
            ("{\"seed\": 1.5, \"events\": []}", "non-negative integer"),
            ("{\"bogus\": 1, \"events\": []}", "unknown top-level key"),
            (
                "{\"events\": [{\"at_s\": 0}]}",
                "missing required key \"kind\"",
            ),
            (
                "{\"events\": [{\"kind\": \"warp_core_breach\", \"at_s\": 0}]}",
                "unknown kind",
            ),
            (
                "{\"events\": [{\"kind\": \"link_flap\", \"at_s\": 0, \"link\": 0, \
                 \"down_s\": 1e-3, \"oops\": 1}]}",
                "unknown key",
            ),
            (
                "{\"events\": [{\"kind\": \"link_flap\", \"at_s\": 0, \"link\": 0.5, \
                 \"down_s\": 1e-3}]}",
                "non-negative integer",
            ),
            (
                "{\"events\": [{\"kind\": \"link_flap\", \"at_s\": \"x\", \"link\": 0, \
                 \"down_s\": 1e-3}]}",
                "must be a number",
            ),
            (
                "{\"seed\": 1, \"seed\": 2, \"events\": []}",
                "duplicate key",
            ),
            ("{\"events\": [{]}", "expected string"),
        ];
        for (doc, needle) in cases {
            let e = parse_schedule(doc);
            assert!(e.is_err(), "{doc:?} should fail");
            let msg = e.expect_err("checked").to_string();
            assert!(
                msg.contains(needle),
                "{doc:?}: expected {needle:?} in {msg:?}"
            );
            assert!(msg.contains("invalid fault spec"), "{msg:?}");
        }
    }

    #[test]
    fn event_errors_name_the_event_index() {
        let doc = r#"{"events": [
            {"at_s": 0.0, "kind": "perturb_kmax", "scale": 1.0},
            {"at_s": 0.0, "kind": "nope"}
        ]}"#;
        let msg = parse_schedule(doc).expect_err("bad kind").to_string();
        assert!(msg.contains("event 1"), "{msg}");
    }

    #[test]
    fn unicode_and_escapes_in_strings() {
        let doc = "{\"events\": [{\"kind\": \"caf\u{e9}\\n\", \"at_s\": 0}]}";
        let msg = parse_schedule(doc).expect_err("unknown kind").to_string();
        assert!(msg.contains("unknown kind"), "{msg}");
    }
}
