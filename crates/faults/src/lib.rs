//! Deterministic fault injection and structured simulator errors.
//!
//! The paper's sharpest results are about behavior under stress — PFC pause
//! storms, incast-like collapse with 64 KB bursts (Figure 10), instability
//! windows at awkward flow counts — yet a simulator exercised only on clean
//! topologies never reaches those regimes. This crate provides the two
//! pieces needed to explore them reproducibly:
//!
//! * [`FaultSchedule`]: a typed, seeded schedule of fault events (link
//!   flaps, per-link packet/CNP loss, RTT jitter and delay spikes, PFC
//!   pause storms, mid-run parameter perturbation) that `netsim::Engine`
//!   compiles onto its event queue. All randomness is drawn from
//!   [`SimRng`](desim::SimRng) sub-streams keyed by `(seed, link id)` via
//!   [`link_stream`], so fault runs are byte-identical across `SIM_THREADS`
//!   and unaffected by unrelated schedule entries.
//! * [`SimError`]: the workspace structured-error type. Config and topology
//!   validation reject bad inputs at construction, and the fluid core's
//!   divergence watchdog reports NaN/Inf or exploding state as a
//!   [`SimError::Divergence`] diagnostic instead of aborting, so sweep
//!   drivers record the failed point and continue.
//!
//! Schedules can be built programmatically (builder methods on
//! [`FaultSchedule`]) or parsed from a JSON spec file ([`spec`]), which is
//! what the `ext_faults` binary's `--faults <spec.json>` flag consumes.

#![deny(missing_docs)]

pub mod error;
pub mod schedule;
pub mod spec;

pub use error::{SimError, SimResult};
pub use schedule::{link_stream, FaultEvent, FaultKind, FaultSchedule, ParamTarget};
pub use spec::parse_schedule;
