//! Typed, seeded fault schedules.
//!
//! A [`FaultSchedule`] is a list of [`FaultEvent`]s — each an absolute
//! activation time plus a [`FaultKind`] — that the packet engine compiles
//! onto its event queue before the run starts. The schedule also carries its
//! own `seed`: every probabilistic fault decision (loss coin flips, jitter
//! samples) is drawn from a per-link [`SimRng`] sub-stream derived by
//! [`link_stream`] from `(seed, link id)`, never from the engine's marking
//! RNG. Two consequences:
//!
//! * an all-zero or empty schedule leaves the baseline run bit-for-bit
//!   unchanged (no extra RNG draws on the marking stream), and
//! * faults on one link never shift the random sequence seen by another,
//!   so runs are byte-identical across `SIM_THREADS` and robust to
//!   reordering unrelated schedule entries.

use crate::error::SimError;
use desim::SimRng;

/// Golden-ratio multiplier used to decorrelate per-link sub-streams (same
/// constant as [`SimRng::fork`]).
const STREAM_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// Derive the fault RNG sub-stream for `(seed, link)`.
///
/// Keyed derivation (rather than sequential forking) makes the stream a
/// pure function of the schedule seed and the link id: it does not depend
/// on how many other links carry faults or in what order the schedule was
/// built.
pub fn link_stream(seed: u64, link: usize) -> SimRng {
    let label = (link as u64).wrapping_add(1).wrapping_mul(STREAM_MIX);
    SimRng::new(seed.rotate_left(23) ^ label)
}

/// Mid-run parameter perturbation targets (the knobs the paper's stability
/// results are most sensitive to).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamTarget {
    /// Scale the RED/ECN upper marking threshold `K_max` (Eq 3).
    RedKmax,
    /// Scale the congestion-control additive-increase step (DCQCN `R_AI`).
    CcRateIncrease,
}

impl ParamTarget {
    /// Stable label used in obs trace events and spec files.
    pub fn label(&self) -> &'static str {
        match self {
            ParamTarget::RedKmax => "red_kmax",
            ParamTarget::CcRateIncrease => "cc_rate_increase",
        }
    }
}

/// One kind of injectable fault. Windowed kinds (`duration_s`) are active
/// for `[at_s, at_s + duration_s)`; overlapping windows on the same link
/// compose (loss probabilities combine as `1 − Π(1 − pᵢ)`, delays add).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Take a link down at `at_s` and bring it back after `down_s`. While
    /// down, nothing (data or control) is transmitted; queued packets wait
    /// and in-flight deliveries complete.
    LinkFlap {
        /// Index of the affected link.
        link: usize,
        /// Outage length in seconds.
        down_s: f64,
    },
    /// Bernoulli loss of *data* packets delivered over a link.
    PacketLoss {
        /// Index of the affected link.
        link: usize,
        /// Per-packet drop probability in `[0, 1]`.
        probability: f64,
        /// Window length in seconds.
        duration_s: f64,
    },
    /// Bernoulli loss of *CNP* (congestion-notification) packets delivered
    /// over a link — models the paper's concern that lost feedback stalls
    /// rate decrease while the queue keeps growing.
    CnpLoss {
        /// Index of the affected link.
        link: usize,
        /// Per-CNP drop probability in `[0, 1]`.
        probability: f64,
        /// Window length in seconds.
        duration_s: f64,
    },
    /// Per-packet exponential extra delivery delay with mean `sigma_s`
    /// (memoryless, so packets naturally reorder) — RTT measurement noise,
    /// the failure mode delay-based schemes are most fragile to.
    RttJitter {
        /// Index of the affected link.
        link: usize,
        /// Mean of the exponential extra delay, seconds.
        sigma_s: f64,
        /// Window length in seconds.
        duration_s: f64,
    },
    /// Constant extra propagation delay — a routing detour or a congested
    /// middle hop outside the modeled topology.
    DelaySpike {
        /// Index of the affected link.
        link: usize,
        /// Extra one-way delay in seconds.
        extra_s: f64,
        /// Window length in seconds.
        duration_s: f64,
    },
    /// Periodic forced PFC-style pauses on a link into a slow receiver:
    /// every `period_s`, data transmission pauses for
    /// `period_s * pause_frac` (control packets still flow, matching PFC
    /// priority semantics).
    PauseStorm {
        /// Index of the affected link (the slow receiver's ingress).
        link: usize,
        /// Storm period in seconds.
        period_s: f64,
        /// Fraction of each period spent paused, in `[0, 1]`.
        pause_frac: f64,
        /// Total storm length in seconds.
        duration_s: f64,
    },
    /// Scale a protocol/AQM parameter mid-run (applies immediately and
    /// permanently at `at_s`).
    Perturb {
        /// Which parameter to scale.
        target: ParamTarget,
        /// Multiplicative factor (e.g. `0.25` quarters `K_max`).
        scale: f64,
    },
}

impl FaultKind {
    /// The link this fault targets, if it is link-scoped.
    pub fn link(&self) -> Option<usize> {
        match *self {
            FaultKind::LinkFlap { link, .. }
            | FaultKind::PacketLoss { link, .. }
            | FaultKind::CnpLoss { link, .. }
            | FaultKind::RttJitter { link, .. }
            | FaultKind::DelaySpike { link, .. }
            | FaultKind::PauseStorm { link, .. } => Some(link),
            FaultKind::Perturb { .. } => None,
        }
    }
}

/// One scheduled fault: an activation time plus a kind.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Absolute activation time in seconds from run start.
    pub at_s: f64,
    /// What to inject.
    pub kind: FaultKind,
}

/// A seeded schedule of fault events (see module docs for the determinism
/// contract).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    /// Seed for the per-link fault RNG sub-streams ([`link_stream`]).
    pub seed: u64,
    /// The scheduled events, in no particular order.
    pub events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule with the given seed. Installing an empty schedule
    /// is free: the engine takes the fault-plane fast path and the run is
    /// bit-identical to one with no schedule at all.
    pub fn new(seed: u64) -> Self {
        FaultSchedule {
            seed,
            events: Vec::new(),
        }
    }

    /// Append an arbitrary event (builder style).
    pub fn push(mut self, at_s: f64, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at_s, kind });
        self
    }

    /// Link down at `at_s`, back up `down_s` later.
    pub fn link_flap(self, at_s: f64, link: usize, down_s: f64) -> Self {
        self.push(at_s, FaultKind::LinkFlap { link, down_s })
    }

    /// Bernoulli data-packet loss window.
    pub fn packet_loss(self, at_s: f64, link: usize, probability: f64, duration_s: f64) -> Self {
        self.push(
            at_s,
            FaultKind::PacketLoss {
                link,
                probability,
                duration_s,
            },
        )
    }

    /// Bernoulli CNP loss window.
    pub fn cnp_loss(self, at_s: f64, link: usize, probability: f64, duration_s: f64) -> Self {
        self.push(
            at_s,
            FaultKind::CnpLoss {
                link,
                probability,
                duration_s,
            },
        )
    }

    /// Exponential per-packet extra-delay (jitter/reorder) window.
    pub fn rtt_jitter(self, at_s: f64, link: usize, sigma_s: f64, duration_s: f64) -> Self {
        self.push(
            at_s,
            FaultKind::RttJitter {
                link,
                sigma_s,
                duration_s,
            },
        )
    }

    /// Constant extra-delay window.
    pub fn delay_spike(self, at_s: f64, link: usize, extra_s: f64, duration_s: f64) -> Self {
        self.push(
            at_s,
            FaultKind::DelaySpike {
                link,
                extra_s,
                duration_s,
            },
        )
    }

    /// Periodic forced-pause storm.
    pub fn pause_storm(
        self,
        at_s: f64,
        link: usize,
        period_s: f64,
        pause_frac: f64,
        duration_s: f64,
    ) -> Self {
        self.push(
            at_s,
            FaultKind::PauseStorm {
                link,
                period_s,
                pause_frac,
                duration_s,
            },
        )
    }

    /// Mid-run parameter perturbation.
    pub fn perturb(self, at_s: f64, target: ParamTarget, scale: f64) -> Self {
        self.push(at_s, FaultKind::Perturb { target, scale })
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Validate the schedule against a topology with `n_links` links.
    ///
    /// Checks every activation time and kind-specific field (finite,
    /// non-negative durations, probabilities and fractions in `[0, 1]`,
    /// link indices in range, positive finite scales/periods) and returns
    /// the first violation as a descriptive [`SimError`].
    pub fn validate(&self, n_links: usize) -> Result<(), SimError> {
        let err = |i: usize, what: String| {
            Err(SimError::config(
                "fault schedule",
                format!("event {i}: {what}"),
            ))
        };
        for (i, ev) in self.events.iter().enumerate() {
            if !ev.at_s.is_finite() || ev.at_s < 0.0 {
                return err(
                    i,
                    format!("activation time {} must be finite and >= 0", ev.at_s),
                );
            }
            if let Some(link) = ev.kind.link() {
                if link >= n_links {
                    return err(
                        i,
                        format!("link {link} out of range (topology has {n_links})"),
                    );
                }
            }
            let finite_nonneg = |v: f64| v.is_finite() && v >= 0.0;
            match ev.kind {
                FaultKind::LinkFlap { down_s, .. } => {
                    if !finite_nonneg(down_s) {
                        return err(i, format!("down time {down_s} must be finite and >= 0"));
                    }
                }
                FaultKind::PacketLoss {
                    probability,
                    duration_s,
                    ..
                }
                | FaultKind::CnpLoss {
                    probability,
                    duration_s,
                    ..
                } => {
                    if !(0.0..=1.0).contains(&probability) {
                        return err(i, format!("loss probability {probability} outside [0, 1]"));
                    }
                    if !finite_nonneg(duration_s) {
                        return err(i, format!("duration {duration_s} must be finite and >= 0"));
                    }
                }
                FaultKind::RttJitter {
                    sigma_s,
                    duration_s,
                    ..
                } => {
                    if !finite_nonneg(sigma_s) {
                        return err(i, format!("jitter sigma {sigma_s} must be finite and >= 0"));
                    }
                    if !finite_nonneg(duration_s) {
                        return err(i, format!("duration {duration_s} must be finite and >= 0"));
                    }
                }
                FaultKind::DelaySpike {
                    extra_s,
                    duration_s,
                    ..
                } => {
                    if !finite_nonneg(extra_s) {
                        return err(i, format!("extra delay {extra_s} must be finite and >= 0"));
                    }
                    if !finite_nonneg(duration_s) {
                        return err(i, format!("duration {duration_s} must be finite and >= 0"));
                    }
                }
                FaultKind::PauseStorm {
                    period_s,
                    pause_frac,
                    duration_s,
                    ..
                } => {
                    if !(period_s.is_finite() && period_s > 0.0) {
                        return err(i, format!("storm period {period_s} must be finite and > 0"));
                    }
                    if !(0.0..=1.0).contains(&pause_frac) {
                        return err(i, format!("pause fraction {pause_frac} outside [0, 1]"));
                    }
                    if !finite_nonneg(duration_s) {
                        return err(i, format!("duration {duration_s} must be finite and >= 0"));
                    }
                }
                FaultKind::Perturb { scale, .. } => {
                    if !(scale.is_finite() && scale > 0.0) {
                        return err(
                            i,
                            format!("perturbation scale {scale} must be finite and > 0"),
                        );
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> FaultSchedule {
        FaultSchedule::new(7)
            .link_flap(0.010, 1, 0.002)
            .packet_loss(0.0, 0, 0.01, 0.05)
            .cnp_loss(0.0, 2, 0.2, 0.05)
            .rtt_jitter(0.0, 1, 10e-6, 0.05)
            .delay_spike(0.02, 1, 100e-6, 0.005)
            .pause_storm(0.01, 1, 1e-3, 0.5, 0.02)
            .perturb(0.05, ParamTarget::RedKmax, 0.25)
            .perturb(0.05, ParamTarget::CcRateIncrease, 4.0)
    }

    #[test]
    fn builder_and_validate_roundtrip() {
        let s = demo();
        assert_eq!(s.len(), 8);
        assert!(!s.is_empty());
        assert!(s.validate(3).is_ok());
    }

    #[test]
    fn validate_rejects_each_bad_field() {
        let n = 3;
        let bad = [
            FaultSchedule::new(1).link_flap(-1.0, 0, 1e-3),
            FaultSchedule::new(1).link_flap(0.0, 7, 1e-3),
            FaultSchedule::new(1).link_flap(0.0, 0, f64::NAN),
            FaultSchedule::new(1).packet_loss(0.0, 0, 1.5, 1e-3),
            FaultSchedule::new(1).cnp_loss(0.0, 0, -0.1, 1e-3),
            FaultSchedule::new(1).rtt_jitter(0.0, 0, -1e-6, 1e-3),
            FaultSchedule::new(1).delay_spike(0.0, 0, f64::INFINITY, 1e-3),
            FaultSchedule::new(1).pause_storm(0.0, 0, 0.0, 0.5, 1e-3),
            FaultSchedule::new(1).pause_storm(0.0, 0, 1e-3, 1.5, 1e-3),
            FaultSchedule::new(1).perturb(0.0, ParamTarget::RedKmax, 0.0),
        ];
        for (i, s) in bad.iter().enumerate() {
            let e = s.validate(n);
            assert!(e.is_err(), "case {i} should be rejected");
            let msg = e.expect_err("checked").to_string();
            assert!(msg.contains("event 0"), "case {i}: {msg}");
        }
        assert!(
            FaultSchedule::new(1).validate(0).is_ok(),
            "empty ok on any topo"
        );
    }

    #[test]
    fn link_streams_are_keyed_not_sequential() {
        // Same (seed, link) -> same stream; different link or seed -> different.
        let mut a = link_stream(42, 3);
        let mut b = link_stream(42, 3);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = link_stream(42, 4);
        let mut d = link_stream(43, 3);
        let mut a2 = link_stream(42, 3);
        let same_c = (0..64).filter(|_| a2.next_u64() == c.next_u64()).count();
        let mut a3 = link_stream(42, 3);
        let same_d = (0..64).filter(|_| a3.next_u64() == d.next_u64()).count();
        assert!(same_c < 2, "link-adjacent streams correlate");
        assert!(same_d < 2, "seed-adjacent streams correlate");
    }

    #[test]
    fn kind_link_extraction() {
        assert_eq!(
            FaultKind::LinkFlap {
                link: 5,
                down_s: 0.0
            }
            .link(),
            Some(5)
        );
        assert_eq!(
            FaultKind::Perturb {
                target: ParamTarget::RedKmax,
                scale: 1.0
            }
            .link(),
            None
        );
    }
}
