//! The workspace structured-error type.
//!
//! Simulator entry points that can be handed bad input (configs, topologies,
//! flow sets, fault specs) validate at construction and return a
//! [`SimError`] with enough context to identify the failing field. The
//! numeric core's divergence watchdog reports runaway integrations as
//! [`SimError::Divergence`] carrying the time, state norm and last step, so
//! a sweep driver can log the failed point and continue with the rest of
//! the sweep instead of aborting the process.

use std::fmt;

/// Convenience alias for results carrying a [`SimError`].
pub type SimResult<T> = Result<T, SimError>;

/// Structured simulator error.
///
/// `Display` renders a single human-readable line that always contains the
/// `detail` text, so panicking compatibility wrappers (`Topology::new`,
/// `integrate_dde`) preserve the exact messages existing `#[should_panic]`
/// tests match on.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A configuration value failed validation at construction time.
    InvalidConfig {
        /// Which component rejected the configuration (e.g. `"EngineConfig"`).
        context: String,
        /// What exactly was wrong, naming the offending field/value.
        detail: String,
    },
    /// A topology failed a sanity check (endpoints, capacities, routes).
    InvalidTopology {
        /// Which builder or check rejected the topology.
        context: String,
        /// What exactly was wrong.
        detail: String,
    },
    /// A flow registration was unusable (bad endpoints, no route).
    InvalidFlow {
        /// Which check rejected the flow.
        context: String,
        /// What exactly was wrong.
        detail: String,
    },
    /// A fault-spec document (`--faults <spec.json>`) failed to parse.
    InvalidSpec {
        /// Parse failure description, including the byte offset.
        detail: String,
    },
    /// The divergence watchdog tripped: NaN/Inf or exploding state.
    Divergence {
        /// Which integrator detected the divergence.
        context: String,
        /// Simulated time at which the watchdog tripped.
        t_s: f64,
        /// Max-norm of the state vector (NaN if a component was non-finite).
        state_norm: f64,
        /// Size of the last attempted step in seconds.
        last_step_s: f64,
        /// Index of the failing step.
        step: u64,
    },
    /// A supervised sweep job exceeded its wall-clock deadline and was
    /// abandoned by the executor watchdog.
    Timeout {
        /// Input-order index of the job within its sweep.
        job_index: usize,
        /// The *configured* per-job deadline — never a measured elapsed
        /// time, so supervision verdicts stay deterministic artifacts.
        deadline_s: f64,
    },
    /// A supervised sweep job panicked; the panic was caught and converted
    /// into this per-slot error instead of aborting the sweep.
    JobPanicked {
        /// Input-order index of the job within its sweep.
        job_index: usize,
        /// The panic message (payload rendered to text).
        payload: String,
    },
}

impl SimError {
    /// Shorthand for [`SimError::InvalidConfig`].
    pub fn config(context: impl Into<String>, detail: impl Into<String>) -> Self {
        SimError::InvalidConfig {
            context: context.into(),
            detail: detail.into(),
        }
    }

    /// Shorthand for [`SimError::InvalidTopology`].
    pub fn topology(context: impl Into<String>, detail: impl Into<String>) -> Self {
        SimError::InvalidTopology {
            context: context.into(),
            detail: detail.into(),
        }
    }

    /// Shorthand for [`SimError::InvalidFlow`].
    pub fn flow(context: impl Into<String>, detail: impl Into<String>) -> Self {
        SimError::InvalidFlow {
            context: context.into(),
            detail: detail.into(),
        }
    }

    /// Shorthand for [`SimError::InvalidSpec`].
    pub fn spec(detail: impl Into<String>) -> Self {
        SimError::InvalidSpec {
            detail: detail.into(),
        }
    }

    /// Shorthand for [`SimError::Timeout`].
    pub fn timeout(job_index: usize, deadline_s: f64) -> Self {
        SimError::Timeout {
            job_index,
            deadline_s,
        }
    }

    /// Shorthand for [`SimError::JobPanicked`].
    pub fn job_panicked(job_index: usize, payload: impl Into<String>) -> Self {
        SimError::JobPanicked {
            job_index,
            payload: payload.into(),
        }
    }

    /// True for the watchdog variant — sweep drivers use this to separate
    /// "bad input" (a bug in the sweep) from "this point diverged" (a
    /// legitimate result to record).
    pub fn is_divergence(&self) -> bool {
        matches!(self, SimError::Divergence { .. })
    }

    /// True for the supervised-executor verdicts ([`SimError::Timeout`],
    /// [`SimError::JobPanicked`]) — failures of a *job*, not of its spec.
    pub fn is_supervision(&self) -> bool {
        matches!(
            self,
            SimError::Timeout { .. } | SimError::JobPanicked { .. }
        )
    }

    /// Stable machine-readable tag for each variant (the JSON `"kind"`).
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::InvalidConfig { .. } => "invalid_config",
            SimError::InvalidTopology { .. } => "invalid_topology",
            SimError::InvalidFlow { .. } => "invalid_flow",
            SimError::InvalidSpec { .. } => "invalid_spec",
            SimError::Divergence { .. } => "divergence",
            SimError::Timeout { .. } => "timeout",
            SimError::JobPanicked { .. } => "job_panicked",
        }
    }

    /// Render as a single-line JSON object (`{"kind": ..., ...fields}`),
    /// the durable form used by quarantine notes and failed-cell records.
    /// [`SimError::from_json`] inverts it exactly.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        push_str_field(&mut out, "kind", self.kind());
        match self {
            SimError::InvalidConfig { context, detail }
            | SimError::InvalidTopology { context, detail }
            | SimError::InvalidFlow { context, detail } => {
                push_str_field(&mut out, "context", context);
                push_str_field(&mut out, "detail", detail);
            }
            SimError::InvalidSpec { detail } => {
                push_str_field(&mut out, "detail", detail);
            }
            SimError::Divergence {
                context,
                t_s,
                state_norm,
                last_step_s,
                step,
            } => {
                push_str_field(&mut out, "context", context);
                push_num_field(&mut out, "t_s", *t_s);
                push_num_field(&mut out, "state_norm", *state_norm);
                push_num_field(&mut out, "last_step_s", *last_step_s);
                out.push_str(&format!("\"step\": {step}, "));
            }
            SimError::Timeout {
                job_index,
                deadline_s,
            } => {
                out.push_str(&format!("\"job_index\": {job_index}, "));
                push_num_field(&mut out, "deadline_s", *deadline_s);
            }
            SimError::JobPanicked { job_index, payload } => {
                out.push_str(&format!("\"job_index\": {job_index}, "));
                push_str_field(&mut out, "payload", payload);
            }
        }
        // Every field writer leaves a trailing ", ".
        out.truncate(out.len() - 2);
        out.push('}');
        out
    }

    /// Parse the [`SimError::to_json`] form back. Unknown kinds and missing
    /// fields come back as [`SimError::InvalidSpec`] describing the defect.
    pub fn from_json(text: &str) -> SimResult<SimError> {
        let doc = crate::spec::parse_document(text)?;
        let obj = doc.as_object("error record")?;
        let kind = obj.get_str("kind")?;
        let job_index = |o: &crate::spec::Obj| -> SimResult<usize> {
            let n = o.get_num("job_index")?;
            // simlint: allow(float-cmp) — exact-by-design: fract()==0.0 is the definition of integrality
            if !(n.is_finite() && n >= 0.0 && n.fract() == 0.0) {
                return Err(SimError::spec(format!(
                    "job_index must be a non-negative integer, got {n}"
                )));
            }
            Ok(n as usize)
        };
        match kind {
            "invalid_config" => Ok(SimError::config(
                obj.get_str("context")?,
                obj.get_str("detail")?,
            )),
            "invalid_topology" => Ok(SimError::topology(
                obj.get_str("context")?,
                obj.get_str("detail")?,
            )),
            "invalid_flow" => Ok(SimError::flow(
                obj.get_str("context")?,
                obj.get_str("detail")?,
            )),
            "invalid_spec" => Ok(SimError::spec(obj.get_str("detail")?)),
            "divergence" => Ok(SimError::Divergence {
                context: obj.get_str("context")?.to_string(),
                t_s: num_or_nan(obj, "t_s")?,
                state_norm: num_or_nan(obj, "state_norm")?,
                last_step_s: num_or_nan(obj, "last_step_s")?,
                step: {
                    let n = obj.get_num("step")?;
                    // simlint: allow(float-cmp) — exact-by-design: fract()==0.0 is the definition of integrality
                    if !(n.is_finite() && n >= 0.0 && n.fract() == 0.0) {
                        return Err(SimError::spec(format!(
                            "step must be a non-negative integer, got {n}"
                        )));
                    }
                    n as u64
                },
            }),
            "timeout" => Ok(SimError::Timeout {
                job_index: job_index(obj)?,
                deadline_s: obj.get_num("deadline_s")?,
            }),
            "job_panicked" => Ok(SimError::JobPanicked {
                job_index: job_index(obj)?,
                payload: obj.get_str("payload")?.to_string(),
            }),
            other => Err(SimError::spec(format!("unknown error kind {other:?}"))),
        }
    }
}

/// Read a float field where the emitter writes non-finite values as
/// `null` (read back as NaN).
fn num_or_nan(obj: &crate::spec::Obj, key: &str) -> SimResult<f64> {
    match obj.get(key) {
        Some(crate::spec::Value::Null) => Ok(f64::NAN),
        _ => obj.get_num(key),
    }
}

/// Append `"key": "escaped", ` to a JSON object under construction.
fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\": \"");
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            // Other control characters have no escape in the in-tree
            // reader; they cannot appear in our own messages, so a space
            // keeps the record parseable if one sneaks in via a panic.
            c if (c as u32) < 0x20 => out.push(' '),
            c => out.push(c),
        }
    }
    out.push_str("\", ");
}

/// Append `"key": number, ` — shortest round-trip float with forced `.0`
/// (the workspace JSON float convention); non-finite renders as `null` and
/// reads back as NaN.
fn push_num_field(out: &mut String, key: &str, value: f64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\": ");
    if value.is_finite() {
        let s = format!("{value}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
    out.push_str(", ");
}

impl desim::supervise::SupervisedError for SimError {
    fn job_panicked(job_index: usize, payload: String) -> Self {
        SimError::JobPanicked { job_index, payload }
    }
    fn job_timeout(job_index: usize, deadline_s: f64) -> Self {
        SimError::Timeout {
            job_index,
            deadline_s,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { context, detail } => {
                write!(f, "invalid config ({context}): {detail}")
            }
            SimError::InvalidTopology { context, detail } => {
                write!(f, "invalid topology ({context}): {detail}")
            }
            SimError::InvalidFlow { context, detail } => {
                write!(f, "invalid flow ({context}): {detail}")
            }
            SimError::InvalidSpec { detail } => write!(f, "invalid fault spec: {detail}"),
            SimError::Divergence {
                context,
                t_s,
                state_norm,
                last_step_s,
                step,
            } => write!(
                f,
                "numeric divergence in {context}: t={t_s:.6e} s, state norm {state_norm:.3e}, \
                 last step {last_step_s:.3e} s, step {step}"
            ),
            SimError::Timeout {
                job_index,
                deadline_s,
            } => write!(
                f,
                "job {job_index} exceeded its {deadline_s} s deadline and was abandoned"
            ),
            SimError::JobPanicked { job_index, payload } => {
                write!(f, "job {job_index} panicked: {payload}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_detail() {
        let e = SimError::topology("Topology::new", "no route from host 0 to host 1");
        assert!(e.to_string().contains("no route"));
        let e = SimError::config("integrate_dde", "step 2 exceeds smallest delay 1");
        assert!(e.to_string().contains("exceeds smallest delay"));
    }

    #[test]
    fn divergence_diagnostic_fields_rendered() {
        let e = SimError::Divergence {
            context: "dde integration".to_string(),
            t_s: 0.125,
            state_norm: 3.5e13,
            last_step_s: 1e-5,
            step: 42,
        };
        let s = e.to_string();
        assert!(s.contains("dde integration"), "{s}");
        assert!(s.contains("1.250000e-1"), "{s}");
        assert!(s.contains("3.500e13"), "{s}");
        assert!(s.contains("step 42"), "{s}");
        assert!(e.is_divergence());
        assert!(!SimError::spec("x").is_divergence());
    }

    #[test]
    fn supervision_variants_display_and_classify() {
        let t = SimError::timeout(7, 30.0);
        assert_eq!(
            t.to_string(),
            "job 7 exceeded its 30 s deadline and was abandoned"
        );
        let p = SimError::job_panicked(3, "index out of bounds");
        assert!(p.to_string().contains("job 3 panicked"), "{p}");
        assert!(t.is_supervision() && p.is_supervision());
        assert!(!t.is_divergence());
        assert!(!SimError::spec("x").is_supervision());
    }

    #[test]
    fn json_round_trips_every_variant() {
        let cases = vec![
            SimError::config("EngineConfig", "bandwidth_bps must be > 0"),
            SimError::topology("Topology::new", "no route \"a\" -> \"b\"\nline 2"),
            SimError::flow("add_flow", "endpoints\tmust differ"),
            SimError::spec("unknown key \"bogus\" at byte 17"),
            SimError::Divergence {
                context: "dde integration".to_string(),
                t_s: 0.125,
                state_norm: 3.5e13,
                last_step_s: 1e-5,
                step: 42,
            },
            SimError::timeout(11, 120.5),
            SimError::job_panicked(0, "panicked with \\backslash\\ and \"quotes\""),
        ];
        for e in cases {
            let j = e.to_json();
            let back = SimError::from_json(&j).expect(&j);
            assert_eq!(back, e, "{j}");
            // Idempotent: re-serializing the parsed form is a fixpoint.
            assert_eq!(back.to_json(), j);
        }
    }

    #[test]
    fn json_non_finite_norm_round_trips_as_null() {
        let e = SimError::Divergence {
            context: "pi".to_string(),
            t_s: 1.0,
            state_norm: f64::NAN,
            last_step_s: 1e-6,
            step: 9,
        };
        let j = e.to_json();
        assert!(j.contains("\"state_norm\": null"), "{j}");
        match SimError::from_json(&j).expect("parses") {
            SimError::Divergence { state_norm, .. } => assert!(state_norm.is_nan()),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn json_rejects_malformed_records() {
        for doc in [
            "not json",
            "{\"kind\": \"mystery\"}",
            "{\"kind\": \"timeout\", \"job_index\": 1.5, \"deadline_s\": 3.0}",
            "{\"kind\": \"timeout\", \"deadline_s\": 3.0}",
            "{\"kind\": \"job_panicked\", \"job_index\": 2}",
            "[]",
        ] {
            assert!(SimError::from_json(doc).is_err(), "{doc}");
        }
    }

    #[test]
    fn executor_trait_constructs_the_faults_variants() {
        use desim::supervise::SupervisedError as _;
        assert_eq!(SimError::job_timeout(4, 2.5), SimError::timeout(4, 2.5));
        assert_eq!(
            <SimError as desim::supervise::SupervisedError>::job_panicked(1, "boom".to_string()),
            SimError::job_panicked(1, "boom")
        );
    }

    #[test]
    fn errors_are_comparable_and_cloneable() {
        let a = SimError::flow("add_flow", "flow endpoints must differ");
        assert_eq!(a.clone(), a);
        assert_ne!(a, SimError::flow("add_flow", "other"));
    }
}
