//! The workspace structured-error type.
//!
//! Simulator entry points that can be handed bad input (configs, topologies,
//! flow sets, fault specs) validate at construction and return a
//! [`SimError`] with enough context to identify the failing field. The
//! numeric core's divergence watchdog reports runaway integrations as
//! [`SimError::Divergence`] carrying the time, state norm and last step, so
//! a sweep driver can log the failed point and continue with the rest of
//! the sweep instead of aborting the process.

use std::fmt;

/// Convenience alias for results carrying a [`SimError`].
pub type SimResult<T> = Result<T, SimError>;

/// Structured simulator error.
///
/// `Display` renders a single human-readable line that always contains the
/// `detail` text, so panicking compatibility wrappers (`Topology::new`,
/// `integrate_dde`) preserve the exact messages existing `#[should_panic]`
/// tests match on.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A configuration value failed validation at construction time.
    InvalidConfig {
        /// Which component rejected the configuration (e.g. `"EngineConfig"`).
        context: String,
        /// What exactly was wrong, naming the offending field/value.
        detail: String,
    },
    /// A topology failed a sanity check (endpoints, capacities, routes).
    InvalidTopology {
        /// Which builder or check rejected the topology.
        context: String,
        /// What exactly was wrong.
        detail: String,
    },
    /// A flow registration was unusable (bad endpoints, no route).
    InvalidFlow {
        /// Which check rejected the flow.
        context: String,
        /// What exactly was wrong.
        detail: String,
    },
    /// A fault-spec document (`--faults <spec.json>`) failed to parse.
    InvalidSpec {
        /// Parse failure description, including the byte offset.
        detail: String,
    },
    /// The divergence watchdog tripped: NaN/Inf or exploding state.
    Divergence {
        /// Which integrator detected the divergence.
        context: String,
        /// Simulated time at which the watchdog tripped.
        t_s: f64,
        /// Max-norm of the state vector (NaN if a component was non-finite).
        state_norm: f64,
        /// Size of the last attempted step in seconds.
        last_step_s: f64,
        /// Index of the failing step.
        step: u64,
    },
}

impl SimError {
    /// Shorthand for [`SimError::InvalidConfig`].
    pub fn config(context: impl Into<String>, detail: impl Into<String>) -> Self {
        SimError::InvalidConfig {
            context: context.into(),
            detail: detail.into(),
        }
    }

    /// Shorthand for [`SimError::InvalidTopology`].
    pub fn topology(context: impl Into<String>, detail: impl Into<String>) -> Self {
        SimError::InvalidTopology {
            context: context.into(),
            detail: detail.into(),
        }
    }

    /// Shorthand for [`SimError::InvalidFlow`].
    pub fn flow(context: impl Into<String>, detail: impl Into<String>) -> Self {
        SimError::InvalidFlow {
            context: context.into(),
            detail: detail.into(),
        }
    }

    /// Shorthand for [`SimError::InvalidSpec`].
    pub fn spec(detail: impl Into<String>) -> Self {
        SimError::InvalidSpec {
            detail: detail.into(),
        }
    }

    /// True for the watchdog variant — sweep drivers use this to separate
    /// "bad input" (a bug in the sweep) from "this point diverged" (a
    /// legitimate result to record).
    pub fn is_divergence(&self) -> bool {
        matches!(self, SimError::Divergence { .. })
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { context, detail } => {
                write!(f, "invalid config ({context}): {detail}")
            }
            SimError::InvalidTopology { context, detail } => {
                write!(f, "invalid topology ({context}): {detail}")
            }
            SimError::InvalidFlow { context, detail } => {
                write!(f, "invalid flow ({context}): {detail}")
            }
            SimError::InvalidSpec { detail } => write!(f, "invalid fault spec: {detail}"),
            SimError::Divergence {
                context,
                t_s,
                state_norm,
                last_step_s,
                step,
            } => write!(
                f,
                "numeric divergence in {context}: t={t_s:.6e} s, state norm {state_norm:.3e}, \
                 last step {last_step_s:.3e} s, step {step}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_detail() {
        let e = SimError::topology("Topology::new", "no route from host 0 to host 1");
        assert!(e.to_string().contains("no route"));
        let e = SimError::config("integrate_dde", "step 2 exceeds smallest delay 1");
        assert!(e.to_string().contains("exceeds smallest delay"));
    }

    #[test]
    fn divergence_diagnostic_fields_rendered() {
        let e = SimError::Divergence {
            context: "dde integration".to_string(),
            t_s: 0.125,
            state_norm: 3.5e13,
            last_step_s: 1e-5,
            step: 42,
        };
        let s = e.to_string();
        assert!(s.contains("dde integration"), "{s}");
        assert!(s.contains("1.250000e-1"), "{s}");
        assert!(s.contains("3.500e13"), "{s}");
        assert!(s.contains("step 42"), "{s}");
        assert!(e.is_divergence());
        assert!(!SimError::spec("x").is_divergence());
    }

    #[test]
    fn errors_are_comparable_and_cloneable() {
        let a = SimError::flow("add_flow", "flow endpoints must differ");
        assert_eq!(a.clone(), a);
        assert_ne!(a, SimError::flow("add_flow", "other"));
    }
}
