//! Numerical linearization via central finite differences.
//!
//! The paper linearizes each fluid model by hand (Appendix A, Eq 33). We
//! differentiate the model's right-hand side numerically at the fixed point
//! instead: for a RHS written as `f(x, x_delayed, u_delayed)`, the Jacobians
//! `∂f/∂x`, `∂f/∂x_delayed` and `∂f/∂u` are exactly the `A₀`, `Aₖ` and `bₖ`
//! blocks of the [`crate::DelayLti`] system. Central differences with a
//! relative step give ~8 significant digits, far more than the phase-margin
//! plots need, and eliminate an entire class of algebra bugs.

/// Central-difference Jacobian of `f: R^n → R^m` at `x`.
///
/// `f` writes its output into the provided slice (length `m`).
pub fn jacobian<F>(mut f: F, x: &[f64], m: usize) -> Vec<Vec<f64>>
where
    F: FnMut(&[f64], &mut [f64]),
{
    let n = x.len();
    let mut jac = vec![vec![0.0; n]; m];
    let mut xp = x.to_vec();
    let mut fp = vec![0.0; m];
    let mut fm = vec![0.0; m];
    for j in 0..n {
        let h = step_for(x[j]);
        xp[j] = x[j] + h;
        f(&xp, &mut fp);
        xp[j] = x[j] - h;
        f(&xp, &mut fm);
        xp[j] = x[j];
        for i in 0..m {
            jac[i][j] = (fp[i] - fm[i]) / (2.0 * h);
        }
    }
    jac
}

/// Central-difference derivative of `f: R → R^m` at `u` (a Jacobian column).
pub fn derivative_column<F>(mut f: F, u: f64, m: usize) -> Vec<f64>
where
    F: FnMut(f64, &mut [f64]),
{
    let h = step_for(u);
    let mut fp = vec![0.0; m];
    let mut fm = vec![0.0; m];
    f(u + h, &mut fp);
    f(u - h, &mut fm);
    (0..m).map(|i| (fp[i] - fm[i]) / (2.0 * h)).collect()
}

/// Central-difference derivative of a scalar function.
pub fn derivative_scalar<F>(mut f: F, u: f64) -> f64
where
    F: FnMut(f64) -> f64,
{
    let h = step_for(u);
    (f(u + h) - f(u - h)) / (2.0 * h)
}

/// A step that balances truncation and rounding error: `h ≈ ε^{1/3}·scale`.
fn step_for(x: f64) -> f64 {
    let scale = x.abs().max(1e-8);
    scale * 6e-6 // ≈ cbrt(f64::EPSILON)
}

/// A cache of linearization results keyed on a parameter vector.
///
/// Grid sweeps (fig3, fig11) re-linearize at many grid points whose
/// *linearization inputs* repeat: e.g. the DCQCN Jacobian blocks depend only
/// on a subset of the swept parameters, so neighboring grid points share
/// them exactly. The cache does a linear scan over stored keys and reuses a
/// stored value when every key component is within `tol` of the probe
/// (`tol = 0.0` means bitwise-exact keys, the setting used on byte-identity
/// critical paths — a hit then returns bits identical to a recompute).
///
/// **Reuse-with-refresh:** each entry is served at most `refresh_after`
/// times before the next hit recomputes it exactly and resets the counter.
/// With `tol = 0.0` the refresh is a pure no-op safeguard; with a loose
/// tolerance it bounds how far an approximate reuse can drift from the
/// exact value.
#[derive(Debug, Clone)]
pub struct JacobianCache<T> {
    entries: Vec<CacheEntry<T>>,
    tol: f64,
    refresh_after: usize,
    hits: usize,
    misses: usize,
}

#[derive(Debug, Clone)]
struct CacheEntry<T> {
    key: Vec<f64>,
    value: T,
    reuses: usize,
}

impl<T: Clone> JacobianCache<T> {
    /// New cache. `tol` is the per-component key tolerance (`0.0` = exact);
    /// `refresh_after` is the number of reuses served before an exact
    /// recompute refreshes the entry.
    pub fn new(tol: f64, refresh_after: usize) -> Self {
        assert!(tol >= 0.0 && tol.is_finite(), "tolerance must be finite");
        assert!(refresh_after >= 1, "refresh_after must be at least 1");
        JacobianCache {
            entries: Vec::new(),
            tol,
            refresh_after,
            hits: 0,
            misses: 0,
        }
    }

    /// Look up `key`, computing (and storing) the value with `compute` on a
    /// miss or on a refresh-due hit.
    pub fn get_or_insert_with<F>(&mut self, key: &[f64], compute: F) -> T
    where
        F: FnOnce() -> T,
    {
        let tol = self.tol;
        let found = self.entries.iter_mut().find(|e| {
            e.key.len() == key.len() && e.key.iter().zip(key).all(|(a, b)| (a - b).abs() <= tol)
        });
        if let Some(entry) = found {
            if entry.reuses < self.refresh_after {
                entry.reuses += 1;
                self.hits += 1;
                return entry.value.clone();
            }
            // Exact-recompute fallback: refresh the entry in place.
            let value = compute();
            entry.key = key.to_vec();
            entry.value = value.clone();
            entry.reuses = 0;
            self.misses += 1;
            return value;
        }
        let value = compute();
        self.entries.push(CacheEntry {
            key: key.to_vec(),
            value: value.clone(),
            reuses: 0,
        });
        self.misses += 1;
        value
    }

    /// `(hits, misses)` — a miss is any call that ran `compute`, including
    /// refreshes.
    pub fn stats(&self) -> (usize, usize) {
        (self.hits, self.misses)
    }

    /// Number of distinct cached keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobian_of_linear_map_is_exact() {
        // f(x) = A x with A = [[1,2],[3,4],[5,6]].
        let f = |x: &[f64], out: &mut [f64]| {
            out[0] = x[0] + 2.0 * x[1];
            out[1] = 3.0 * x[0] + 4.0 * x[1];
            out[2] = 5.0 * x[0] + 6.0 * x[1];
        };
        let j = jacobian(f, &[0.7, -1.3], 3);
        let expect = [[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]];
        for i in 0..3 {
            for k in 0..2 {
                assert!((j[i][k] - expect[i][k]).abs() < 1e-7, "J[{i}][{k}]");
            }
        }
    }

    #[test]
    fn jacobian_of_nonlinear_map() {
        // f(x, y) = (x², x·y): J = [[2x, 0], [y, x]].
        let f = |x: &[f64], out: &mut [f64]| {
            out[0] = x[0] * x[0];
            out[1] = x[0] * x[1];
        };
        let j = jacobian(f, &[2.0, 3.0], 2);
        assert!((j[0][0] - 4.0).abs() < 1e-6);
        assert!(j[0][1].abs() < 1e-6);
        assert!((j[1][0] - 3.0).abs() < 1e-6);
        assert!((j[1][1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn derivative_column_of_exponential() {
        let col = derivative_column(
            |u: f64, out: &mut [f64]| {
                out[0] = u.exp();
                out[1] = (2.0 * u).sin();
            },
            0.5,
            2,
        );
        assert!((col[0] - 0.5f64.exp()).abs() < 1e-6);
        assert!((col[1] - 2.0 * 1.0f64.cos()).abs() < 1e-6);
    }

    #[test]
    fn derivative_scalar_accuracy() {
        let d = derivative_scalar(|x| x.powi(3), 2.0);
        assert!((d - 12.0).abs() < 1e-6, "d = {d}");
        let d0 = derivative_scalar(|x| x.sin(), 0.0);
        assert!((d0 - 1.0).abs() < 1e-8);
    }

    #[test]
    fn jacobian_cache_exact_keys_hit_and_refresh() {
        let mut cache: JacobianCache<Vec<f64>> = JacobianCache::new(0.0, 2);
        let mut computes = 0usize;
        let probe = |cache: &mut JacobianCache<Vec<f64>>, key: &[f64], computes: &mut usize| {
            let k = key.to_vec();
            cache.get_or_insert_with(key, || {
                *computes += 1;
                k.iter().map(|v| v * 2.0).collect()
            })
        };
        // First call computes; next two identical keys hit.
        let a = probe(&mut cache, &[1.0, 2.0], &mut computes);
        let b = probe(&mut cache, &[1.0, 2.0], &mut computes);
        let c = probe(&mut cache, &[1.0, 2.0], &mut computes);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(computes, 1);
        // Third reuse exceeds refresh_after = 2 → exact recompute.
        let d = probe(&mut cache, &[1.0, 2.0], &mut computes);
        assert_eq!(c, d);
        assert_eq!(computes, 2, "refresh must recompute exactly");
        // A different key is a miss; tol = 0 must not match 1.0 + 1e-12.
        let _ = probe(&mut cache, &[1.0 + 1e-12, 2.0], &mut computes);
        assert_eq!(computes, 3);
        assert_eq!(cache.len(), 2);
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (2, 3));
    }

    #[test]
    fn jacobian_cache_tolerance_matches_nearby_keys() {
        let mut cache: JacobianCache<f64> = JacobianCache::new(1e-6, 100);
        let v1 = cache.get_or_insert_with(&[1.0], || 10.0);
        // Within tol: reuses the stored value even though the key differs.
        let v2 = cache.get_or_insert_with(&[1.0 + 5e-7], || 20.0);
        assert_eq!(v1, v2);
        // Outside tol: computes fresh.
        let v3 = cache.get_or_insert_with(&[1.01], || 30.0);
        assert_eq!(v3, 30.0);
    }

    #[test]
    fn handles_tiny_operating_points() {
        // The DCQCN fixed point has p* ~ 1e-3; the step heuristic must not
        // underflow to a zero step there.
        let d = derivative_scalar(|p| p * p, 1e-3);
        assert!((d - 2e-3).abs() < 1e-9);
        let d = derivative_scalar(|p| p * p, 0.0);
        assert!(d.abs() < 1e-9);
    }
}
