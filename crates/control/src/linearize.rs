//! Numerical linearization via central finite differences.
//!
//! The paper linearizes each fluid model by hand (Appendix A, Eq 33). We
//! differentiate the model's right-hand side numerically at the fixed point
//! instead: for a RHS written as `f(x, x_delayed, u_delayed)`, the Jacobians
//! `∂f/∂x`, `∂f/∂x_delayed` and `∂f/∂u` are exactly the `A₀`, `Aₖ` and `bₖ`
//! blocks of the [`crate::DelayLti`] system. Central differences with a
//! relative step give ~8 significant digits, far more than the phase-margin
//! plots need, and eliminate an entire class of algebra bugs.

/// Central-difference Jacobian of `f: R^n → R^m` at `x`.
///
/// `f` writes its output into the provided slice (length `m`).
pub fn jacobian<F>(mut f: F, x: &[f64], m: usize) -> Vec<Vec<f64>>
where
    F: FnMut(&[f64], &mut [f64]),
{
    let n = x.len();
    let mut jac = vec![vec![0.0; n]; m];
    let mut xp = x.to_vec();
    let mut fp = vec![0.0; m];
    let mut fm = vec![0.0; m];
    for j in 0..n {
        let h = step_for(x[j]);
        xp[j] = x[j] + h;
        f(&xp, &mut fp);
        xp[j] = x[j] - h;
        f(&xp, &mut fm);
        xp[j] = x[j];
        for i in 0..m {
            jac[i][j] = (fp[i] - fm[i]) / (2.0 * h);
        }
    }
    jac
}

/// Central-difference derivative of `f: R → R^m` at `u` (a Jacobian column).
pub fn derivative_column<F>(mut f: F, u: f64, m: usize) -> Vec<f64>
where
    F: FnMut(f64, &mut [f64]),
{
    let h = step_for(u);
    let mut fp = vec![0.0; m];
    let mut fm = vec![0.0; m];
    f(u + h, &mut fp);
    f(u - h, &mut fm);
    (0..m).map(|i| (fp[i] - fm[i]) / (2.0 * h)).collect()
}

/// Central-difference derivative of a scalar function.
pub fn derivative_scalar<F>(mut f: F, u: f64) -> f64
where
    F: FnMut(f64) -> f64,
{
    let h = step_for(u);
    (f(u + h) - f(u - h)) / (2.0 * h)
}

/// A step that balances truncation and rounding error: `h ≈ ε^{1/3}·scale`.
fn step_for(x: f64) -> f64 {
    let scale = x.abs().max(1e-8);
    scale * 6e-6 // ≈ cbrt(f64::EPSILON)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobian_of_linear_map_is_exact() {
        // f(x) = A x with A = [[1,2],[3,4],[5,6]].
        let f = |x: &[f64], out: &mut [f64]| {
            out[0] = x[0] + 2.0 * x[1];
            out[1] = 3.0 * x[0] + 4.0 * x[1];
            out[2] = 5.0 * x[0] + 6.0 * x[1];
        };
        let j = jacobian(f, &[0.7, -1.3], 3);
        let expect = [[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]];
        for i in 0..3 {
            for k in 0..2 {
                assert!((j[i][k] - expect[i][k]).abs() < 1e-7, "J[{i}][{k}]");
            }
        }
    }

    #[test]
    fn jacobian_of_nonlinear_map() {
        // f(x, y) = (x², x·y): J = [[2x, 0], [y, x]].
        let f = |x: &[f64], out: &mut [f64]| {
            out[0] = x[0] * x[0];
            out[1] = x[0] * x[1];
        };
        let j = jacobian(f, &[2.0, 3.0], 2);
        assert!((j[0][0] - 4.0).abs() < 1e-6);
        assert!(j[0][1].abs() < 1e-6);
        assert!((j[1][0] - 3.0).abs() < 1e-6);
        assert!((j[1][1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn derivative_column_of_exponential() {
        let col = derivative_column(
            |u: f64, out: &mut [f64]| {
                out[0] = u.exp();
                out[1] = (2.0 * u).sin();
            },
            0.5,
            2,
        );
        assert!((col[0] - 0.5f64.exp()).abs() < 1e-6);
        assert!((col[1] - 2.0 * 1.0f64.cos()).abs() < 1e-6);
    }

    #[test]
    fn derivative_scalar_accuracy() {
        let d = derivative_scalar(|x| x.powi(3), 2.0);
        assert!((d - 12.0).abs() < 1e-6, "d = {d}");
        let d0 = derivative_scalar(|x| x.sin(), 0.0);
        assert!((d0 - 1.0).abs() < 1e-8);
    }

    #[test]
    fn handles_tiny_operating_points() {
        // The DCQCN fixed point has p* ~ 1e-3; the step heuristic must not
        // underflow to a zero step there.
        let d = derivative_scalar(|p| p * p, 1e-3);
        assert!((d - 2e-3).abs() < 1e-9);
        let d = derivative_scalar(|p| p * p, 0.0);
        assert!(d.abs() < 1e-9);
    }
}
