//! Dense complex matrices with partial-pivoted LU solve.
//!
//! Transfer-function evaluation reduces to solving
//! `(sI − A₀ − Σₖ Aₖ e^{−sτₖ}) x = b(s)` for small state dimensions
//! (3 per flow for DCQCN, 2 for patched TIMELY). A straightforward dense LU
//! with partial pivoting is exact enough and keeps the dependency footprint
//! at zero.

use crate::complex::Complex64;

/// A dense, row-major complex matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl CMatrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Build from a real matrix (row-major rows of equal length).
    pub fn from_real(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut m = CMatrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged rows");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = Complex64::from_re(v);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `self + other`.
    pub fn add(&self, other: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
        out
    }

    /// `self - other`.
    pub fn sub(&self, other: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&other.data) {
            *a -= *b;
        }
        out
    }

    /// Scale by a complex factor.
    pub fn scale(&self, k: Complex64) -> CMatrix {
        let mut out = self.clone();
        for a in out.data.iter_mut() {
            *a *= k;
        }
        out
    }

    /// Matrix-vector product.
    pub fn mul_vec(&self, v: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(v.len(), self.cols);
        let mut out = vec![Complex64::ZERO; self.rows];
        for i in 0..self.rows {
            let mut acc = Complex64::ZERO;
            for j in 0..self.cols {
                acc += self[(i, j)] * v[j];
            }
            out[i] = acc;
        }
        out
    }

    /// Solve `self * x = b` by partial-pivoted Gaussian elimination.
    /// Returns `None` when the matrix is numerically singular.
    pub fn solve(&self, b: &[Complex64]) -> Option<Vec<Complex64>> {
        assert_eq!(self.rows, self.cols, "solve needs a square matrix");
        assert_eq!(b.len(), self.rows);
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        if solve_in_place(&mut a, &mut x, self.rows) {
            Some(x)
        } else {
            None
        }
    }
}

/// Partial-pivoted LU solve of `a · x = x₀` in place, destroying `a` and
/// overwriting `x` with the solution. `a` is row-major `n × n`. Returns
/// `false` (with `a`/`x` in an unspecified state) when the matrix is
/// numerically singular. This is the allocation-free core shared by
/// [`CMatrix::solve`] and the reusable-buffer evaluator in
/// [`crate::delay_lti`].
pub fn solve_in_place(a: &mut [Complex64], x: &mut [Complex64], n: usize) -> bool {
    assert_eq!(a.len(), n * n, "matrix buffer must be n*n");
    assert_eq!(x.len(), n, "rhs must be length n");
    let idx = |i: usize, j: usize| i * n + j;

    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        let mut best = a[idx(col, col)].abs();
        for r in col + 1..n {
            let mag = a[idx(r, col)].abs();
            if mag > best {
                best = mag;
                pivot = r;
            }
        }
        if best < 1e-300 {
            return false;
        }
        if pivot != col {
            for j in 0..n {
                a.swap(idx(col, j), idx(pivot, j));
            }
            x.swap(col, pivot);
        }
        let inv = a[idx(col, col)].inv();
        for r in col + 1..n {
            let factor = a[idx(r, col)] * inv;
            if factor.abs() == 0.0 {
                continue;
            }
            for j in col..n {
                let sub = factor * a[idx(col, j)];
                a[idx(r, j)] -= sub;
            }
            let sub = factor * x[col];
            x[r] -= sub;
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        let mut acc = x[col];
        for j in col + 1..n {
            acc -= a[idx(col, j)] * x[j];
        }
        x[col] = acc / a[idx(col, col)];
    }
    true
}

impl std::ops::Index<(usize, usize)> for CMatrix {
    type Output = Complex64;
    fn index(&self, (i, j): (usize, usize)) -> &Complex64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for CMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn identity_solve_is_identity() {
        let m = CMatrix::identity(3);
        let b = vec![c(1.0, 2.0), c(3.0, 4.0), c(5.0, 6.0)];
        assert_eq!(m.solve(&b).unwrap(), b);
    }

    #[test]
    fn solve_real_system() {
        // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
        let m = CMatrix::from_real(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = m.solve(&[c(5.0, 0.0), c(10.0, 0.0)]).unwrap();
        assert!((x[0] - c(1.0, 0.0)).abs() < 1e-12);
        assert!((x[1] - c(3.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn solve_complex_system_roundtrip() {
        let mut m = CMatrix::zeros(3, 3);
        // A fixed, well-conditioned complex matrix.
        let vals = [
            [c(2.0, 1.0), c(0.5, -0.3), c(0.0, 0.2)],
            [c(-1.0, 0.4), c(3.0, 0.0), c(0.7, 0.7)],
            [c(0.2, -0.2), c(0.1, 1.0), c(4.0, -1.0)],
        ];
        for i in 0..3 {
            for j in 0..3 {
                m[(i, j)] = vals[i][j];
            }
        }
        let x_true = vec![c(1.0, -1.0), c(0.5, 2.0), c(-3.0, 0.25)];
        let b = m.mul_vec(&x_true);
        let x = m.solve(&b).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            assert!((*got - *want).abs() < 1e-10);
        }
    }

    #[test]
    fn singular_detected() {
        let m = CMatrix::from_real(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(m.solve(&[c(1.0, 0.0), c(2.0, 0.0)]).is_none());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // Leading zero requires a row swap.
        let m = CMatrix::from_real(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = m.solve(&[c(3.0, 0.0), c(7.0, 0.0)]).unwrap();
        assert!((x[0] - c(7.0, 0.0)).abs() < 1e-12);
        assert!((x[1] - c(3.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn add_sub_scale() {
        let a = CMatrix::from_real(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = CMatrix::from_real(&[vec![4.0, 3.0], vec![2.0, 1.0]]);
        let s = a.add(&b);
        assert_eq!(s[(0, 0)], c(5.0, 0.0));
        let d = s.sub(&b);
        assert_eq!(d[(1, 1)], c(4.0, 0.0));
        let k = a.scale(c(0.0, 1.0));
        assert_eq!(k[(0, 1)], c(0.0, 2.0));
    }
}
