//! Delayed LTI systems and transfer-function evaluation.
//!
//! Linearizing a fluid model around its fixed point yields a system
//!
//! ```text
//! δx'(t) = A₀ δx(t) + Σₖ Aₖ δx(t − τₖ) + Σₖ bₖ u(t − τₖ)
//! y(t)   = cᵀ δx(t) + d·u(t)
//! ```
//!
//! whose transfer function at `s` is
//!
//! ```text
//! H(s) = cᵀ (sI − A₀ − Σₖ Aₖ e^{−sτₖ})⁻¹ (Σₖ bₖ e^{−sτₖ}) + d
//! ```
//!
//! For the paper's protocols the per-flow subsystem is 2–3 dimensional:
//! DCQCN has state (R_C, R_T, α) driven by the delayed marking probability
//! `p(t − τ*)`; patched TIMELY has state (R, g) driven by delayed queue
//! lengths. The loop is closed through the shared queue integrator `N/s` and
//! the marking slope — assembled in [`crate::margins`].

use crate::cmatrix::{solve_in_place, CMatrix};
use crate::complex::Complex64;

/// A single-input single-output delayed LTI system (see module docs).
#[derive(Debug, Clone)]
pub struct DelayLti {
    /// Undelayed state matrix `A₀` (n×n).
    pub a0: Vec<Vec<f64>>,
    /// Delayed state couplings `(τₖ, Aₖ)`.
    pub delayed_a: Vec<(f64, Vec<Vec<f64>>)>,
    /// Delayed input columns `(τₖ, bₖ)`.
    pub b: Vec<(f64, Vec<f64>)>,
    /// Output row `cᵀ`.
    pub c: Vec<f64>,
    /// Direct feedthrough `d`.
    pub d: f64,
}

impl DelayLti {
    /// State dimension.
    pub fn dim(&self) -> usize {
        self.a0.len()
    }

    /// Validate shapes; panics with a descriptive message on mismatch.
    pub fn validate(&self) {
        let n = self.dim();
        for row in &self.a0 {
            assert_eq!(row.len(), n, "A0 must be square");
        }
        for (tau, a) in &self.delayed_a {
            assert!(*tau >= 0.0, "negative delay");
            assert_eq!(a.len(), n, "Ak row count");
            for row in a {
                assert_eq!(row.len(), n, "Ak must be n x n");
            }
        }
        for (tau, b) in &self.b {
            assert!(*tau >= 0.0, "negative delay");
            assert_eq!(b.len(), n, "b must be length n");
        }
        assert_eq!(self.c.len(), n, "c must be length n");
    }

    /// Evaluate the transfer function `H(s)`.
    ///
    /// Returns `None` when `sI − A(s)` is numerically singular (a pole).
    pub fn transfer(&self, s: Complex64) -> Option<Complex64> {
        let n = self.dim();
        // M = sI - A0 - Σ Ak e^{-s τk}
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = s;
            for j in 0..n {
                m[(i, j)] -= Complex64::from_re(self.a0[i][j]);
            }
        }
        for (tau, a) in &self.delayed_a {
            let e = (-s * *tau).exp();
            for i in 0..n {
                for j in 0..n {
                    let sub = e * a[i][j];
                    m[(i, j)] -= sub;
                }
            }
        }
        // rhs = Σ bk e^{-s τk}
        let mut rhs = vec![Complex64::ZERO; n];
        for (tau, b) in &self.b {
            let e = (-s * *tau).exp();
            for i in 0..n {
                rhs[i] += e * b[i];
            }
        }
        let x = m.solve(&rhs)?;
        let mut y = Complex64::from_re(self.d);
        for (ci, xi) in self.c.iter().zip(x.iter()).take(n) {
            y += Complex64::from_re(*ci) * *xi;
        }
        Some(y)
    }

    /// Evaluate at `s = jω`.
    pub fn freq_response(&self, omega: f64) -> Option<Complex64> {
        self.transfer(Complex64::j(omega))
    }
}

/// A reusable-buffer evaluator for one [`DelayLti`] system.
///
/// [`DelayLti::transfer`] allocates the dense matrix, the right-hand side and
/// the LU workspace on every call; a margin sweep evaluates the same small
/// system at thousands of frequencies, so those allocations dominate. The
/// evaluator owns the buffers and rebuilds them in place with the **same
/// arithmetic in the same order** as `transfer`, so its results are
/// bit-identical to the allocating path (asserted by this module's tests).
#[derive(Debug, Clone)]
pub struct DelayLtiEvaluator {
    sys: DelayLti,
    m: Vec<Complex64>,
    rhs: Vec<Complex64>,
}

impl DelayLtiEvaluator {
    /// Wrap a validated system.
    pub fn new(sys: DelayLti) -> Self {
        sys.validate();
        let n = sys.dim();
        DelayLtiEvaluator {
            sys,
            m: vec![Complex64::ZERO; n * n],
            rhs: vec![Complex64::ZERO; n],
        }
    }

    /// The wrapped system.
    pub fn system(&self) -> &DelayLti {
        &self.sys
    }

    /// Evaluate the transfer function `H(s)` without allocating.
    ///
    /// Returns `None` when `sI − A(s)` is numerically singular (a pole).
    pub fn transfer(&mut self, s: Complex64) -> Option<Complex64> {
        let sys = &self.sys;
        let n = sys.dim();
        // M = sI - A0 - Σ Ak e^{-s τk}
        let m = &mut self.m;
        m.fill(Complex64::ZERO);
        for i in 0..n {
            m[i * n + i] = s;
            for j in 0..n {
                m[i * n + j] -= Complex64::from_re(sys.a0[i][j]);
            }
        }
        for (tau, a) in &sys.delayed_a {
            let e = (-s * *tau).exp();
            for i in 0..n {
                for j in 0..n {
                    let sub = e * a[i][j];
                    m[i * n + j] -= sub;
                }
            }
        }
        // rhs = Σ bk e^{-s τk}
        let rhs = &mut self.rhs;
        rhs.fill(Complex64::ZERO);
        for (tau, b) in &sys.b {
            let e = (-s * *tau).exp();
            for i in 0..n {
                rhs[i] += e * b[i];
            }
        }
        if !solve_in_place(m, rhs, n) {
            return None;
        }
        let mut y = Complex64::from_re(sys.d);
        for (ci, xi) in sys.c.iter().zip(rhs.iter()).take(n) {
            y += Complex64::from_re(*ci) * *xi;
        }
        Some(y)
    }

    /// Evaluate at `s = jω` without allocating.
    pub fn freq_response(&mut self, omega: f64) -> Option<Complex64> {
        self.transfer(Complex64::j(omega))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First-order lag: x' = -a x + a u, y = x → H(s) = a/(s+a).
    fn first_order(a: f64) -> DelayLti {
        DelayLti {
            a0: vec![vec![-a]],
            delayed_a: vec![],
            b: vec![(0.0, vec![a])],
            c: vec![1.0],
            d: 0.0,
        }
    }

    #[test]
    fn first_order_lag_magnitude_and_phase() {
        let sys = first_order(10.0);
        sys.validate();
        // At ω = a, |H| = 1/√2 and phase = -45°.
        let h = sys.freq_response(10.0).unwrap();
        assert!((h.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((h.arg().to_degrees() + 45.0).abs() < 1e-9);
        // DC gain is 1.
        let dc = sys.freq_response(0.0).unwrap();
        assert!((dc - Complex64::ONE).abs() < 1e-12);
    }

    #[test]
    fn pure_delay_in_input_rotates_phase_only() {
        let tau = 0.01;
        let mut sys = first_order(10.0);
        sys.b[0].0 = tau;
        let without = first_order(10.0).freq_response(5.0).unwrap();
        let with = sys.freq_response(5.0).unwrap();
        assert!((with.abs() - without.abs()).abs() < 1e-12);
        let dphase = with.arg() - without.arg();
        assert!((dphase + 5.0 * tau).abs() < 1e-12, "phase shift {dphase}");
    }

    #[test]
    fn delayed_state_feedback_matches_analytic() {
        // x' = -x(t - τ), H(s) = e^{-sτ}/(s + e^{-sτ}) for y = x, u → x' += u(t-τ)
        let tau = 0.5;
        let sys = DelayLti {
            a0: vec![vec![0.0]],
            delayed_a: vec![(tau, vec![vec![-1.0]])],
            b: vec![(tau, vec![1.0])],
            c: vec![1.0],
            d: 0.0,
        };
        let w = 2.0;
        let s = Complex64::j(w);
        let e = (-s * tau).exp();
        let expect = e / (s + e);
        let got = sys.freq_response(w).unwrap();
        assert!((got - expect).abs() < 1e-12);
    }

    #[test]
    fn integrator_pole_detected_at_zero() {
        // x' = u, y = x → H = 1/s: singular at s = 0.
        let sys = DelayLti {
            a0: vec![vec![0.0]],
            delayed_a: vec![],
            b: vec![(0.0, vec![1.0])],
            c: vec![1.0],
            d: 0.0,
        };
        assert!(sys.freq_response(0.0).is_none());
        let h = sys.freq_response(4.0).unwrap();
        assert!((h.abs() - 0.25).abs() < 1e-12);
        assert!((h.arg().to_degrees() + 90.0).abs() < 1e-9);
    }

    #[test]
    fn two_state_resonator() {
        // x1' = x2; x2' = -ω0² x1 + u; y = x1 → H = 1/(s² + ω0²).
        let w0 = 3.0;
        let sys = DelayLti {
            a0: vec![vec![0.0, 1.0], vec![-w0 * w0, 0.0]],
            delayed_a: vec![],
            b: vec![(0.0, vec![0.0, 1.0])],
            c: vec![1.0, 0.0],
            d: 0.0,
        };
        let h = sys.freq_response(1.0).unwrap();
        assert!((h.abs() - 1.0 / (w0 * w0 - 1.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "negative delay")]
    fn negative_delay_rejected() {
        let sys = DelayLti {
            a0: vec![vec![0.0]],
            delayed_a: vec![(-0.1, vec![vec![1.0]])],
            b: vec![],
            c: vec![1.0],
            d: 0.0,
        };
        sys.validate();
    }

    #[test]
    #[should_panic(expected = "c must be length n")]
    fn shape_mismatch_rejected() {
        let sys = DelayLti {
            a0: vec![vec![0.0]],
            delayed_a: vec![],
            b: vec![],
            c: vec![1.0, 2.0],
            d: 0.0,
        };
        sys.validate();
    }

    #[test]
    fn feedthrough_adds() {
        let mut sys = first_order(1.0);
        sys.d = 2.0;
        let dc = sys.freq_response(0.0).unwrap();
        assert!((dc.re - 3.0).abs() < 1e-12);
    }

    #[test]
    fn evaluator_is_bitwise_identical_to_allocating_path() {
        // A system exercising every term: delayed A, two delayed b columns,
        // feedthrough, 2 states.
        let sys = DelayLti {
            a0: vec![vec![-0.3, 1.2], vec![0.0, -2.0]],
            delayed_a: vec![(0.05, vec![vec![-0.5, 0.0], vec![0.1, -0.2]])],
            b: vec![(0.01, vec![1.0, 0.0]), (0.07, vec![0.0, 3.0])],
            c: vec![1.0, -0.5],
            d: 0.25,
        };
        let mut ev = DelayLtiEvaluator::new(sys.clone());
        for k in 0..200 {
            let omega = 1e-2 * 1.1f64.powi(k);
            let a = sys.freq_response(omega);
            let b = ev.freq_response(omega);
            match (a, b) {
                (Some(x), Some(y)) => {
                    assert_eq!(x.re.to_bits(), y.re.to_bits(), "re at omega={omega}");
                    assert_eq!(x.im.to_bits(), y.im.to_bits(), "im at omega={omega}");
                }
                (None, None) => {}
                _ => panic!("pole detection diverged at omega={omega}"),
            }
        }
        // Pole case agrees too (integrator at s = 0).
        let integ = DelayLti {
            a0: vec![vec![0.0]],
            delayed_a: vec![],
            b: vec![(0.0, vec![1.0])],
            c: vec![1.0],
            d: 0.0,
        };
        let mut ev = DelayLtiEvaluator::new(integ.clone());
        assert!(integ.freq_response(0.0).is_none());
        assert!(ev.freq_response(0.0).is_none());
    }
}
