//! # control — control-theoretic analysis toolkit
//!
//! The paper's stability results (Figures 3 and 11, Appendix A) come from a
//! classical pipeline: linearize the fluid model around its fixed point,
//! Laplace-transform the linearized delay system, and compute the **phase
//! margin** of the open-loop transfer function (Bode stability criterion).
//!
//! This crate implements that pipeline numerically, avoiding the paper's
//! hand algebra while computing the same quantity:
//!
//! * [`complex`] — a self-contained `Complex64` (the workspace deliberately
//!   owns its numerics; the models need a handful of operations);
//! * [`cmatrix`] — dense complex matrices with LU solve, enough to evaluate
//!   `(sI − A₀ − Σₖ Aₖ e^{−s τₖ})⁻¹ B(s)` at `s = jω`;
//! * [`delay_lti`] — delayed LTI state-space systems with multiple discrete
//!   delays and transfer-function evaluation;
//! * [`margins`] — Bode sweeps, gain-crossover search and phase margin;
//! * [`linearize`] — central finite-difference Jacobians of a nonlinear
//!   vector function (used to linearize fluid models at the fixed point);
//! * [`roots`] — robust scalar root finding (bisection / Brent) for fixed-
//!   point equations such as the paper's Eq 11.

#![deny(missing_docs)]

pub mod cmatrix;
pub mod complex;
pub mod delay_lti;
pub mod linearize;
pub mod margins;
pub mod roots;

pub use cmatrix::CMatrix;
pub use complex::Complex64;
pub use delay_lti::{DelayLti, DelayLtiEvaluator};
pub use linearize::JacobianCache;
pub use margins::{phase_margin, phase_margin_adaptive, BodePoint, MarginReport, NoCrossing};
