//! Minimal complex arithmetic.
//!
//! The analysis code needs complex add/sub/mul/div, exponentials of purely
//! imaginary arguments (`e^{−jωτ}`), magnitude and argument. Owning ~150
//! lines is cheaper than importing a numerics crate outside the approved
//! offline set, and keeps the numerical behaviour fully under our control.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// 0 + 0j.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// 1 + 0j.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// 0 + 1j.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Construct from parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Real number as complex.
    pub const fn from_re(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Purely imaginary `jω`.
    pub const fn j(omega: f64) -> Self {
        Complex64 { re: 0.0, im: omega }
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude |z|.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument in radians, in (−π, π].
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Complex exponential `e^z`.
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Complex64::new(r * self.im.cos(), r * self.im.sin())
    }

    /// `e^{jθ}` without constructing an intermediate.
    pub fn cis(theta: f64) -> Self {
        Complex64::new(theta.cos(), theta.sin())
    }

    /// Multiplicative inverse. Panics on zero in debug builds.
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        debug_assert!(d > 0.0, "inverting zero");
        Complex64::new(self.re / d, -self.im / d)
    }

    /// True when either part is NaN.
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Scale by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    fn div(self, rhs: Complex64) -> Complex64 {
        // Smith's algorithm for numerical robustness with large/small parts.
        if rhs.re.abs() >= rhs.im.abs() {
            let r = rhs.im / rhs.re;
            let d = rhs.re + rhs.im * r;
            Complex64::new((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = rhs.re / rhs.im;
            let d = rhs.re * r + rhs.im;
            Complex64::new((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::from_re(re)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn basic_arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert_eq!(a + b, Complex64::new(4.0, 1.0));
        assert_eq!(a - b, Complex64::new(-2.0, 3.0));
        assert_eq!(a * b, Complex64::new(5.0, 5.0));
        let q = a / b;
        let back = q * b;
        assert!((back - a).abs() < EPS);
    }

    #[test]
    fn division_robust_to_scale() {
        let a = Complex64::new(1e200, 1e-200);
        let q = a / a;
        assert!((q - Complex64::ONE).abs() < 1e-10);
    }

    #[test]
    fn exp_of_imaginary_is_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * 0.4;
            let z = Complex64::j(theta).exp();
            assert!((z.abs() - 1.0).abs() < EPS);
            assert!((z - Complex64::cis(theta)).abs() < EPS);
        }
    }

    #[test]
    fn arg_and_abs() {
        let z = Complex64::new(0.0, 2.0);
        assert!((z.arg() - std::f64::consts::FRAC_PI_2).abs() < EPS);
        assert!((z.abs() - 2.0).abs() < EPS);
        assert!((Complex64::new(-1.0, 0.0).arg() - std::f64::consts::PI).abs() < EPS);
    }

    #[test]
    fn inverse() {
        let z = Complex64::new(3.0, 4.0);
        assert!((z * z.inv() - Complex64::ONE).abs() < EPS);
    }

    #[test]
    fn conjugate_properties() {
        let z = Complex64::new(2.5, -1.5);
        assert!((z * z.conj()).im.abs() < EPS);
        assert!(((z * z.conj()).re - z.norm_sqr()).abs() < EPS);
    }

    #[test]
    fn euler_identity() {
        let z = Complex64::j(std::f64::consts::PI).exp();
        assert!((z + Complex64::ONE).abs() < 1e-12);
    }
}
