//! Scalar root finding for fixed-point equations.
//!
//! Theorem 1 reduces DCQCN's fixed point to one scalar equation (Eq 11) whose
//! left-hand side is monotone in `p` on (0, 1); bisection is therefore exact
//! and unconditionally convergent. A Brent variant accelerates the
//! phase-margin crossover searches.

/// Error from a failed root search.
#[derive(Debug, Clone, PartialEq)]
pub enum RootError {
    /// `f(a)` and `f(b)` have the same sign — no bracketed root.
    NoBracket {
        /// f at the left endpoint.
        fa: f64,
        /// f at the right endpoint.
        fb: f64,
    },
    /// The function returned NaN during the search.
    NotFinite,
}

impl std::fmt::Display for RootError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RootError::NoBracket { fa, fb } => {
                write!(f, "no sign change in bracket: f(a)={fa}, f(b)={fb}")
            }
            RootError::NotFinite => write!(f, "function returned a non-finite value"),
        }
    }
}

impl std::error::Error for RootError {}

/// Bisection on `[a, b]` down to interval width `tol`. Requires a sign
/// change; returns the midpoint of the final interval.
pub fn bisect<F>(mut f: F, mut a: f64, mut b: f64, tol: f64) -> Result<f64, RootError>
where
    F: FnMut(f64) -> f64,
{
    assert!(b > a && tol > 0.0);
    let mut fa = f(a);
    let fb = f(b);
    if !fa.is_finite() || !fb.is_finite() {
        return Err(RootError::NotFinite);
    }
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(RootError::NoBracket { fa, fb });
    }
    while b - a > tol {
        let mid = 0.5 * (a + b);
        let fm = f(mid);
        if !fm.is_finite() {
            return Err(RootError::NotFinite);
        }
        if fm == 0.0 {
            return Ok(mid);
        }
        if fm.signum() == fa.signum() {
            a = mid;
            fa = fm;
        } else {
            b = mid;
        }
    }
    Ok(0.5 * (a + b))
}

/// Brent's method: inverse-quadratic interpolation with bisection fallback.
/// Typically 5–10× fewer evaluations than bisection for smooth functions.
pub fn brent<F>(mut f: F, mut a: f64, mut b: f64, tol: f64) -> Result<f64, RootError>
where
    F: FnMut(f64) -> f64,
{
    assert!(tol > 0.0);
    let mut fa = f(a);
    let mut fb = f(b);
    if !fa.is_finite() || !fb.is_finite() {
        return Err(RootError::NotFinite);
    }
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(RootError::NoBracket { fa, fb });
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;
    for _ in 0..200 {
        if fb == 0.0 || (b - a).abs() < tol {
            return Ok(b);
        }
        let mut s;
        if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            s = a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb));
        } else {
            // Secant.
            s = b - fb * (b - a) / (fb - fa);
        }
        let cond_range = {
            let lo = (3.0 * a + b) / 4.0;
            let (lo, hi) = if lo < b { (lo, b) } else { (b, lo) };
            s < lo || s > hi
        };
        let cond_progress = if mflag {
            (s - b).abs() >= (b - c).abs() / 2.0
        } else {
            (s - b).abs() >= (c - d).abs() / 2.0
        };
        let cond_tol = if mflag {
            (b - c).abs() < tol
        } else {
            (c - d).abs() < tol
        };
        if cond_range || cond_progress || cond_tol {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        if !fs.is_finite() {
            return Err(RootError::NotFinite);
        }
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-11);
    }

    #[test]
    fn bisect_detects_missing_bracket() {
        let e = bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-9).unwrap_err();
        assert!(matches!(e, RootError::NoBracket { .. }));
    }

    #[test]
    fn bisect_exact_endpoint_root() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-9).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-9).unwrap(), 1.0);
    }

    #[test]
    fn brent_matches_bisect() {
        let f = |x: f64| x.exp() - 3.0;
        let rb = bisect(f, 0.0, 2.0, 1e-13).unwrap();
        let rr = brent(f, 0.0, 2.0, 1e-13).unwrap();
        assert!((rb - 3.0f64.ln()).abs() < 1e-10);
        assert!((rr - 3.0f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn brent_on_steep_function() {
        // Steep cubic: root at 0.01.
        let f = |x: f64| (x - 0.01).powi(3) * 1e9;
        let r = brent(f, -1.0, 1.0, 1e-12).unwrap();
        assert!((r - 0.01).abs() < 1e-4, "r = {r}");
    }

    #[test]
    fn brent_handles_monotone_eq11_shape() {
        // Shape like the paper's Eq 11: g(p) = LHS(p) − RHS, monotone
        // increasing, root near small p.
        let rhs = 1e-4;
        let f = |p: f64| p * p * p / (1.0 - p).max(1e-12) - rhs;
        let r = brent(f, 1e-12, 0.5, 1e-14).unwrap();
        assert!((f(r)).abs() < 1e-10);
        assert!(r > 0.0 && r < 0.1);
    }

    #[test]
    fn non_finite_reported() {
        let e = bisect(|_| f64::NAN, 0.0, 1.0, 1e-9).unwrap_err();
        assert_eq!(e, RootError::NotFinite);
    }
}
