//! Bode sweeps, gain crossover and phase-margin computation.
//!
//! The paper's stability figures (3 and 11) plot the **phase margin** of the
//! linearized control loop: "A stable system must have negative Gain (in dB)
//! when there is a small oscillation around the fixed point […] Phase Margin
//! is defined as how far the system is from the 0 dB Gain state."
//!
//! Given the open-loop response `L(jω)` (a closure, so callers can assemble
//! arbitrary loops from [`crate::DelayLti`] blocks, integrators and marking
//! gains), we sweep a log-spaced frequency grid, **unwrap the phase** (delay
//! terms wind it through many multiples of −180°), locate every 0 dB
//! crossing by bisection, and report the minimum phase margin across
//! crossings — the conservative choice when delays produce multiple
//! crossovers, which is exactly the regime behind DCQCN's non-monotonic
//! stability.

use crate::complex::Complex64;

/// One point of a Bode sweep.
#[derive(Debug, Clone, Copy)]
pub struct BodePoint {
    /// Angular frequency (rad/s).
    pub omega: f64,
    /// Gain in dB.
    pub gain_db: f64,
    /// Unwrapped phase in degrees.
    pub phase_deg: f64,
}

/// Why a sweep found no unity-gain crossing (`phase_margin_deg == None`).
///
/// A silent `None` used to conflate two very different situations: a loop
/// whose gain never reaches 0 dB (genuinely gain-stable for any phase) and a
/// sweep whose `[omega_min, omega_max]` grid simply missed the crossing.
/// The diagnostic makes the distinction explicit so callers can widen the
/// grid instead of mistaking a truncated sweep for stability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoCrossing {
    /// `|L| < 1` over the entire grid: the loop is gain-stable for any
    /// phase. This is the only variant [`MarginReport::is_stable`] treats
    /// as stable.
    AllBelowUnity,
    /// `|L| > 1` over the entire grid: the unity-gain crossing lies outside
    /// `[omega_min, omega_max]`. The sweep says nothing about stability —
    /// widen the grid. Reported as *not* stable.
    AllAboveUnity,
    /// The loop returned no finite samples on the grid at all (poles or
    /// NaNs everywhere). Reported as *not* stable.
    EmptyGrid,
}

/// Result of a margin analysis.
#[derive(Debug, Clone)]
pub struct MarginReport {
    /// Gain-crossover frequencies (rad/s) where |L| falls through 1.
    pub crossover_omegas: Vec<f64>,
    /// Phase margin (degrees) at the worst crossover; `None` when the sweep
    /// found no 0 dB crossing — see `no_crossing` for why.
    pub phase_margin_deg: Option<f64>,
    /// Gain margin (dB) at the first −180° phase crossing, if any.
    pub gain_margin_db: Option<f64>,
    /// Swept Bode points (for figure output).
    pub bode: Vec<BodePoint>,
    /// Present exactly when `phase_margin_deg` is `None`: the reason the
    /// grid bracketed no unity-gain crossing.
    pub no_crossing: Option<NoCrossing>,
}

impl MarginReport {
    /// A positive phase margin means stable. With no crossover at all, only
    /// the [`NoCrossing::AllBelowUnity`] diagnosis (gain below 0 dB on the
    /// whole grid) counts as stable; a grid that sat entirely above 0 dB
    /// missed the crossing and must not be reported as stable.
    pub fn is_stable(&self) -> bool {
        match self.phase_margin_deg {
            Some(pm) => pm > 0.0,
            None => matches!(self.no_crossing, Some(NoCrossing::AllBelowUnity)),
        }
    }
}

/// Sweep `l` over `[omega_min, omega_max]` with `points` log-spaced samples
/// and compute margins. `l` must be defined (non-pole) on the sweep range.
///
/// ```
/// use control::complex::Complex64;
/// use control::margins::phase_margin;
///
/// // L(s) = 1/(s(s+1)): the classic type-1 loop, PM ≈ 51.8°.
/// let l = |w: f64| Some(Complex64::ONE / (Complex64::j(w) * (Complex64::j(w) + Complex64::ONE)));
/// let rep = phase_margin(l, 1e-3, 1e3, 2000);
/// assert!(rep.is_stable());
/// assert!((rep.phase_margin_deg.unwrap() - 51.8).abs() < 0.5);
/// ```
pub fn phase_margin<F>(l: F, omega_min: f64, omega_max: f64, points: usize) -> MarginReport
where
    F: Fn(f64) -> Option<Complex64>,
{
    assert!(omega_min > 0.0 && omega_max > omega_min && points >= 16);
    let log_min = omega_min.ln();
    let log_max = omega_max.ln();
    let mut bode = Vec::with_capacity(points);
    let mut prev_phase_raw: Option<f64> = None;
    let mut unwrap_offset = 0.0;

    for k in 0..points {
        let omega = (log_min + (log_max - log_min) * k as f64 / (points - 1) as f64).exp();
        let Some(z) = l(omega) else { continue };
        if z.is_nan() {
            continue;
        }
        let gain_db = 20.0 * z.abs().log10();
        let raw = z.arg().to_degrees();
        if let Some(prev) = prev_phase_raw {
            let mut d = raw - prev;
            while d > 180.0 {
                d -= 360.0;
                unwrap_offset -= 360.0;
            }
            while d < -180.0 {
                d += 360.0;
                unwrap_offset += 360.0;
            }
        }
        prev_phase_raw = Some(raw);
        bode.push(BodePoint {
            omega,
            gain_db,
            phase_deg: raw + unwrap_offset,
        });
    }

    report_from_bode(&l, bode)
}

/// Adaptive-grid variant of [`phase_margin`]: same report, far fewer `l`
/// evaluations.
///
/// The uniform sweep spends almost all of its samples in regions where the
/// gain curve is featureless. This walk starts at a coarse log-ω step
/// (8× the uniform spacing implied by `points`) and subdivides only where it
/// matters: any step that brackets a 0 dB crossing is refined down to ≤4×
/// the base spacing before being accepted, steps near unity gain must keep
/// the wrapped phase change ≤ 45° and the gain change ≤ 3 dB, and far-field
/// steps only require the gain change ≤ 10 dB (phase aliasing far from 0 dB
/// cannot affect the margins, exactly as in the uniform sweep at high ω).
/// Accepted steps grow back geometrically up to 64× base.
///
/// Crossover bisection, branch selection and the gain-margin interpolation
/// are shared with [`phase_margin`], so margins agree to the bisection
/// tolerance (~1e-6°) though the recorded `bode` grid differs. `points`
/// retains its meaning as the *resolution floor*: the walk never needs a
/// step finer than the uniform sweep's spacing.
pub fn phase_margin_adaptive<F>(l: F, omega_min: f64, omega_max: f64, points: usize) -> MarginReport
where
    F: Fn(f64) -> Option<Complex64>,
{
    assert!(omega_min > 0.0 && omega_max > omega_min && points >= 16);
    let log_min = omega_min.ln();
    let log_max = omega_max.ln();
    let base = (log_max - log_min) / (points - 1) as f64;
    let max_step = base * 64.0;

    // A raw sample: (log ω, gain dB, wrapped phase deg), or None at a pole.
    let sample = |lg: f64| -> Option<(f64, f64, f64)> {
        let omega = lg.exp();
        let z = l(omega)?;
        if z.is_nan() {
            return None;
        }
        Some((lg, 20.0 * z.abs().log10(), z.arg().to_degrees()))
    };

    // Seed: first finite sample at or after log_min (step by base like the
    // uniform sweep does when it skips poles).
    let mut raw = Vec::with_capacity(points / 4);
    let mut lg = log_min;
    let mut cur = loop {
        if let Some(s) = sample(lg) {
            break s;
        }
        lg += base;
        if lg > log_max {
            return report_from_bode(&l, Vec::new());
        }
    };
    raw.push(cur);

    let wrapped_delta = |a: f64, b: f64| {
        let mut d = b - a;
        while d > 180.0 {
            d -= 360.0;
        }
        while d < -180.0 {
            d += 360.0;
        }
        d
    };

    let mut step = base * 8.0;
    while cur.0 < log_max - base * 1e-9 {
        step = step.min(log_max - cur.0).max(base.min(log_max - cur.0));
        let accepted = loop {
            let lg_next = cur.0 + step;
            let at_floor = step <= base * 1.000001;
            match sample(lg_next) {
                None => {
                    // Pole/NaN: the uniform sweep would skip it; step over.
                    cur = (lg_next, cur.1, cur.2);
                    break None;
                }
                Some(next) => {
                    let crossing = (cur.1 > 0.0) != (next.1 > 0.0);
                    let near_unity = cur.1.abs().min(next.1.abs()) < 12.0;
                    let dgain = (next.1 - cur.1).abs();
                    let dphase = wrapped_delta(cur.2, next.2).abs();
                    let ok = if crossing {
                        step <= base * 4.000001
                    } else if near_unity {
                        dphase <= 45.0 && dgain <= 3.0
                    } else {
                        dgain <= 10.0
                    };
                    if ok || at_floor {
                        break Some(next);
                    }
                    step = (step / 2.0).max(base);
                }
            }
        };
        if let Some(next) = accepted {
            raw.push(next);
            cur = next;
            step = (step * 1.7).min(max_step);
        }
    }

    // Unwrap the accepted samples exactly like the uniform sweep.
    let mut bode = Vec::with_capacity(raw.len());
    let mut prev_phase_raw: Option<f64> = None;
    let mut unwrap_offset = 0.0;
    for (lg, gain_db, raw_phase) in raw {
        if let Some(prev) = prev_phase_raw {
            let mut d = raw_phase - prev;
            while d > 180.0 {
                d -= 360.0;
                unwrap_offset -= 360.0;
            }
            while d < -180.0 {
                d += 360.0;
                unwrap_offset += 360.0;
            }
        }
        prev_phase_raw = Some(raw_phase);
        bode.push(BodePoint {
            omega: lg.exp(),
            gain_db,
            phase_deg: raw_phase + unwrap_offset,
        });
    }

    report_from_bode(&l, bode)
}

/// Shared back half of the margin analysis: locate 0 dB crossings on an
/// (already unwrapped) Bode grid, bisect each, read the gain margin, and
/// diagnose the no-crossing case.
fn report_from_bode<F>(l: &F, bode: Vec<BodePoint>) -> MarginReport
where
    F: Fn(f64) -> Option<Complex64>,
{
    // Locate 0 dB crossings (gain falling or rising through 0).
    let mut crossover_omegas = Vec::new();
    let mut pms = Vec::new();
    for w in bode.windows(2) {
        let (p0, p1) = (w[0], w[1]);
        if (p0.gain_db > 0.0) != (p1.gain_db > 0.0) {
            // Bisect in log-ω for the crossing.
            let mut lo = p0.omega;
            let mut hi = p1.omega;
            for _ in 0..60 {
                let mid = ((lo.ln() + hi.ln()) / 2.0).exp();
                let g = l(mid).map(|z| 20.0 * z.abs().log10()).unwrap_or(0.0);
                if (g > 0.0) == (p0.gain_db > 0.0) {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let wc = (lo * hi).sqrt();
            if let Some(z) = l(wc) {
                // Phase at crossover: use the unwrapped sweep phase of the
                // bracketing points plus the local raw offset for precision.
                let raw = z.arg().to_degrees();
                // Choose the unwrap branch nearest the interpolated sweep phase.
                let approx = p0.phase_deg
                    + (p1.phase_deg - p0.phase_deg)
                        * ((wc.ln() - p0.omega.ln()) / (p1.omega.ln() - p0.omega.ln()));
                let mut phase = raw;
                while phase - approx > 180.0 {
                    phase -= 360.0;
                }
                while phase - approx < -180.0 {
                    phase += 360.0;
                }
                crossover_omegas.push(wc);
                pms.push(180.0 + phase);
            }
        }
    }

    // Gain margin at the first unwrapped -180° phase crossing.
    let mut gain_margin_db = None;
    for w in bode.windows(2) {
        let (p0, p1) = (w[0], w[1]);
        if (p0.phase_deg + 180.0) * (p1.phase_deg + 180.0) < 0.0 {
            let f = (-180.0 - p0.phase_deg) / (p1.phase_deg - p0.phase_deg);
            let g = p0.gain_db + f * (p1.gain_db - p0.gain_db);
            gain_margin_db = Some(-g);
            break;
        }
    }

    let phase_margin_deg = pms.iter().copied().min_by(|a, b| a.total_cmp(b));

    // Diagnose the no-crossing case so callers can tell "gain-stable" from
    // "the grid missed the crossing".
    let no_crossing = if phase_margin_deg.is_some() {
        None
    } else if bode.is_empty() {
        Some(NoCrossing::EmptyGrid)
    } else if bode.iter().all(|p| p.gain_db <= 0.0) {
        Some(NoCrossing::AllBelowUnity)
    } else {
        Some(NoCrossing::AllAboveUnity)
    };

    MarginReport {
        crossover_omegas,
        phase_margin_deg,
        gain_margin_db,
        bode,
        no_crossing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex64;

    /// L(s) = K / (s (s+1)): classic type-1 loop with analytic margins.
    fn type1(k: f64) -> impl Fn(f64) -> Option<Complex64> {
        move |omega: f64| {
            let s = Complex64::j(omega);
            Some(Complex64::from_re(k) / (s * (s + Complex64::ONE)))
        }
    }

    #[test]
    fn integrator_lag_phase_margin_matches_analytic() {
        // For L = 1/(s(s+1)): ω_c solves ω²(ω²+1)=1 → ω_c ≈ 0.7862,
        // PM = 180 − 90 − atan(ω_c) ≈ 51.83°.
        let rep = phase_margin(type1(1.0), 1e-3, 1e3, 2000);
        let pm = rep.phase_margin_deg.unwrap();
        assert!((pm - 51.83).abs() < 0.1, "pm = {pm}");
        assert!(rep.is_stable());
        let wc = rep.crossover_omegas[0];
        assert!((wc - 0.7862).abs() < 1e-3, "wc = {wc}");
    }

    #[test]
    fn high_gain_reduces_margin() {
        let pm1 = phase_margin(type1(1.0), 1e-3, 1e3, 1500)
            .phase_margin_deg
            .unwrap();
        let pm10 = phase_margin(type1(10.0), 1e-3, 1e3, 1500)
            .phase_margin_deg
            .unwrap();
        assert!(pm10 < pm1);
        assert!(pm10 > 0.0, "type-1 second-order loop is always stable");
    }

    #[test]
    fn delay_destabilizes() {
        // L = e^{-sT}/(s(s+1)) with big T goes unstable.
        let with_delay = |t: f64| {
            move |omega: f64| {
                let s = Complex64::j(omega);
                Some((-s * t).exp() / (s * (s + Complex64::ONE)))
            }
        };
        let pm_small = phase_margin(with_delay(0.1), 1e-3, 1e3, 2000)
            .phase_margin_deg
            .unwrap();
        let pm_big = phase_margin(with_delay(5.0), 1e-3, 1e3, 2000)
            .phase_margin_deg
            .unwrap();
        assert!(pm_small > 0.0);
        assert!(pm_big < 0.0, "pm with 5 s delay = {pm_big}");
        assert!(!phase_margin(with_delay(5.0), 1e-3, 1e3, 2000).is_stable());
    }

    #[test]
    fn no_crossover_reports_none_and_stable() {
        // |L| = 0.1/(1+ω²)^{1/2} < 1 everywhere.
        let l = |omega: f64| Some(Complex64::from_re(0.1) / (Complex64::j(omega) + Complex64::ONE));
        let rep = phase_margin(l, 1e-2, 1e2, 500);
        assert!(rep.phase_margin_deg.is_none());
        assert!(rep.is_stable());
        assert!(rep.crossover_omegas.is_empty());
        assert_eq!(rep.no_crossing, Some(NoCrossing::AllBelowUnity));
    }

    #[test]
    fn grid_missing_the_crossing_is_diagnosed_not_silently_stable() {
        // L = 100/(s+1) has its unity-gain crossing at ω ≈ 100, far outside
        // the swept [1e-3, 1e-1] grid: |L| ≈ 40 dB over the whole sweep.
        // This must NOT be reported as stable — the old silent `None` did.
        let l =
            |omega: f64| Some(Complex64::from_re(100.0) / (Complex64::j(omega) + Complex64::ONE));
        for rep in [
            phase_margin(l, 1e-3, 1e-1, 100),
            phase_margin_adaptive(l, 1e-3, 1e-1, 100),
        ] {
            assert!(rep.phase_margin_deg.is_none());
            assert!(rep.crossover_omegas.is_empty());
            assert_eq!(rep.no_crossing, Some(NoCrossing::AllAboveUnity));
            assert!(
                !rep.is_stable(),
                "a truncated sweep must not claim stability"
            );
        }
        // Widening the grid to cover the crossing resolves the diagnosis.
        let rep = phase_margin_adaptive(l, 1e-3, 1e4, 2000);
        assert!(rep.phase_margin_deg.is_some());
        assert!(rep.no_crossing.is_none());
    }

    #[test]
    fn adaptive_matches_uniform_on_reference_loops() {
        // Type-1 loop: analytic PM ≈ 51.83° at ω_c ≈ 0.7862.
        let rep_u = phase_margin(type1(1.0), 1e-3, 1e3, 2000);
        let rep_a = phase_margin_adaptive(type1(1.0), 1e-3, 1e3, 2000);
        let pm_u = rep_u.phase_margin_deg.unwrap();
        let pm_a = rep_a.phase_margin_deg.unwrap();
        assert!(
            (pm_a - pm_u).abs() < 1e-3,
            "uniform {pm_u} vs adaptive {pm_a}"
        );
        assert!(
            (rep_a.crossover_omegas[0] - rep_u.crossover_omegas[0]).abs() < 1e-6,
            "crossover frequency must agree"
        );
        // The adaptive grid must actually be much smaller.
        assert!(
            rep_a.bode.len() * 3 < rep_u.bode.len(),
            "adaptive used {} points vs uniform {}",
            rep_a.bode.len(),
            rep_u.bode.len()
        );

        // Delay loop with a negative margin (the regime fig3 lives in).
        let with_delay = |t: f64| {
            move |omega: f64| {
                let s = Complex64::j(omega);
                Some((-s * t).exp() / (s * (s + Complex64::ONE)))
            }
        };
        let pm_u = phase_margin(with_delay(5.0), 1e-3, 1e3, 2000)
            .phase_margin_deg
            .unwrap();
        let pm_a = phase_margin_adaptive(with_delay(5.0), 1e-3, 1e3, 2000)
            .phase_margin_deg
            .unwrap();
        assert!(pm_a < 0.0, "delay loop must stay unstable: {pm_a}");
        assert!(
            (pm_a - pm_u).abs() < 1e-3,
            "uniform {pm_u} vs adaptive {pm_a}"
        );

        // Multiple crossovers: L = K(s+1)/(s²) style resonant dip — use the
        // third-order loop and check gain margin survives adaptivity too.
        let l3 = |omega: f64| {
            let den = Complex64::j(omega) + Complex64::ONE;
            Some(Complex64::from_re(2.0) / (den * den * den))
        };
        let gm_u = phase_margin(l3, 1e-3, 1e3, 4000).gain_margin_db.unwrap();
        let gm_a = phase_margin_adaptive(l3, 1e-3, 1e3, 4000)
            .gain_margin_db
            .unwrap();
        assert!(
            (gm_a - gm_u).abs() < 0.2,
            "uniform {gm_u} vs adaptive {gm_a}"
        );
    }

    #[test]
    fn gain_margin_of_third_order_loop() {
        // L = K/(s+1)^3 crosses -180° at ω = √3 where |L| = K/8.
        let l = |omega: f64| {
            let den = Complex64::j(omega) + Complex64::ONE;
            Some(Complex64::from_re(2.0) / (den * den * den))
        };
        let rep = phase_margin(l, 1e-3, 1e3, 4000);
        let gm = rep.gain_margin_db.unwrap();
        // Expected GM = -20 log10(2/8) = 12.04 dB.
        assert!((gm - 12.04).abs() < 0.1, "gm = {gm}");
    }

    #[test]
    fn phase_unwrapping_is_monotone_for_pure_delay() {
        // L = e^{-s}/s: phase = -90° - ω·(180/π), strictly decreasing.
        let l = |omega: f64| Some((-Complex64::j(omega)).exp() / Complex64::j(omega));
        let rep = phase_margin(l, 1e-2, 1e2, 3000);
        for w in rep.bode.windows(2) {
            assert!(w[1].phase_deg <= w[0].phase_deg + 1e-6);
        }
        // At ω = 10, unwrapped phase ≈ -90 - 573 = -663°.
        let p = rep
            .bode
            .iter()
            .min_by(|a, b| {
                (a.omega - 10.0)
                    .abs()
                    .partial_cmp(&(b.omega - 10.0).abs())
                    .unwrap()
            })
            .unwrap();
        assert!((p.phase_deg + 90.0 + 10.0f64.to_degrees()).abs() < 5.0);
    }
}
