//! Bode sweeps, gain crossover and phase-margin computation.
//!
//! The paper's stability figures (3 and 11) plot the **phase margin** of the
//! linearized control loop: "A stable system must have negative Gain (in dB)
//! when there is a small oscillation around the fixed point […] Phase Margin
//! is defined as how far the system is from the 0 dB Gain state."
//!
//! Given the open-loop response `L(jω)` (a closure, so callers can assemble
//! arbitrary loops from [`crate::DelayLti`] blocks, integrators and marking
//! gains), we sweep a log-spaced frequency grid, **unwrap the phase** (delay
//! terms wind it through many multiples of −180°), locate every 0 dB
//! crossing by bisection, and report the minimum phase margin across
//! crossings — the conservative choice when delays produce multiple
//! crossovers, which is exactly the regime behind DCQCN's non-monotonic
//! stability.

use crate::complex::Complex64;

/// One point of a Bode sweep.
#[derive(Debug, Clone, Copy)]
pub struct BodePoint {
    /// Angular frequency (rad/s).
    pub omega: f64,
    /// Gain in dB.
    pub gain_db: f64,
    /// Unwrapped phase in degrees.
    pub phase_deg: f64,
}

/// Result of a margin analysis.
#[derive(Debug, Clone)]
pub struct MarginReport {
    /// Gain-crossover frequencies (rad/s) where |L| falls through 1.
    pub crossover_omegas: Vec<f64>,
    /// Phase margin (degrees) at the worst crossover; `None` when the loop
    /// never reaches 0 dB (then the loop is gain-stable for any phase).
    pub phase_margin_deg: Option<f64>,
    /// Gain margin (dB) at the first −180° phase crossing, if any.
    pub gain_margin_db: Option<f64>,
    /// Swept Bode points (for figure output).
    pub bode: Vec<BodePoint>,
}

impl MarginReport {
    /// A positive phase margin (or no crossover at all) means stable.
    pub fn is_stable(&self) -> bool {
        self.phase_margin_deg.is_none_or(|pm| pm > 0.0)
    }
}

/// Sweep `l` over `[omega_min, omega_max]` with `points` log-spaced samples
/// and compute margins. `l` must be defined (non-pole) on the sweep range.
///
/// ```
/// use control::complex::Complex64;
/// use control::margins::phase_margin;
///
/// // L(s) = 1/(s(s+1)): the classic type-1 loop, PM ≈ 51.8°.
/// let l = |w: f64| Some(Complex64::ONE / (Complex64::j(w) * (Complex64::j(w) + Complex64::ONE)));
/// let rep = phase_margin(l, 1e-3, 1e3, 2000);
/// assert!(rep.is_stable());
/// assert!((rep.phase_margin_deg.unwrap() - 51.8).abs() < 0.5);
/// ```
pub fn phase_margin<F>(l: F, omega_min: f64, omega_max: f64, points: usize) -> MarginReport
where
    F: Fn(f64) -> Option<Complex64>,
{
    assert!(omega_min > 0.0 && omega_max > omega_min && points >= 16);
    let log_min = omega_min.ln();
    let log_max = omega_max.ln();
    let mut bode = Vec::with_capacity(points);
    let mut prev_phase_raw: Option<f64> = None;
    let mut unwrap_offset = 0.0;

    for k in 0..points {
        let omega = (log_min + (log_max - log_min) * k as f64 / (points - 1) as f64).exp();
        let Some(z) = l(omega) else { continue };
        if z.is_nan() {
            continue;
        }
        let gain_db = 20.0 * z.abs().log10();
        let raw = z.arg().to_degrees();
        if let Some(prev) = prev_phase_raw {
            let mut d = raw - prev;
            while d > 180.0 {
                d -= 360.0;
                unwrap_offset -= 360.0;
            }
            while d < -180.0 {
                d += 360.0;
                unwrap_offset += 360.0;
            }
        }
        prev_phase_raw = Some(raw);
        bode.push(BodePoint {
            omega,
            gain_db,
            phase_deg: raw + unwrap_offset,
        });
    }

    // Locate 0 dB crossings (gain falling or rising through 0).
    let mut crossover_omegas = Vec::new();
    let mut pms = Vec::new();
    for w in bode.windows(2) {
        let (p0, p1) = (w[0], w[1]);
        if (p0.gain_db > 0.0) != (p1.gain_db > 0.0) {
            // Bisect in log-ω for the crossing.
            let mut lo = p0.omega;
            let mut hi = p1.omega;
            for _ in 0..60 {
                let mid = ((lo.ln() + hi.ln()) / 2.0).exp();
                let g = l(mid).map(|z| 20.0 * z.abs().log10()).unwrap_or(0.0);
                if (g > 0.0) == (p0.gain_db > 0.0) {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let wc = (lo * hi).sqrt();
            if let Some(z) = l(wc) {
                // Phase at crossover: use the unwrapped sweep phase of the
                // bracketing points plus the local raw offset for precision.
                let raw = z.arg().to_degrees();
                // Choose the unwrap branch nearest the interpolated sweep phase.
                let approx = p0.phase_deg
                    + (p1.phase_deg - p0.phase_deg)
                        * ((wc.ln() - p0.omega.ln()) / (p1.omega.ln() - p0.omega.ln()));
                let mut phase = raw;
                while phase - approx > 180.0 {
                    phase -= 360.0;
                }
                while phase - approx < -180.0 {
                    phase += 360.0;
                }
                crossover_omegas.push(wc);
                pms.push(180.0 + phase);
            }
        }
    }

    // Gain margin at the first unwrapped -180° phase crossing.
    let mut gain_margin_db = None;
    for w in bode.windows(2) {
        let (p0, p1) = (w[0], w[1]);
        if (p0.phase_deg + 180.0) * (p1.phase_deg + 180.0) < 0.0 {
            let f = (-180.0 - p0.phase_deg) / (p1.phase_deg - p0.phase_deg);
            let g = p0.gain_db + f * (p1.gain_db - p0.gain_db);
            gain_margin_db = Some(-g);
            break;
        }
    }

    let phase_margin_deg = pms.iter().copied().min_by(|a, b| a.total_cmp(b));

    MarginReport {
        crossover_omegas,
        phase_margin_deg,
        gain_margin_db,
        bode,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex64;

    /// L(s) = K / (s (s+1)): classic type-1 loop with analytic margins.
    fn type1(k: f64) -> impl Fn(f64) -> Option<Complex64> {
        move |omega: f64| {
            let s = Complex64::j(omega);
            Some(Complex64::from_re(k) / (s * (s + Complex64::ONE)))
        }
    }

    #[test]
    fn integrator_lag_phase_margin_matches_analytic() {
        // For L = 1/(s(s+1)): ω_c solves ω²(ω²+1)=1 → ω_c ≈ 0.7862,
        // PM = 180 − 90 − atan(ω_c) ≈ 51.83°.
        let rep = phase_margin(type1(1.0), 1e-3, 1e3, 2000);
        let pm = rep.phase_margin_deg.unwrap();
        assert!((pm - 51.83).abs() < 0.1, "pm = {pm}");
        assert!(rep.is_stable());
        let wc = rep.crossover_omegas[0];
        assert!((wc - 0.7862).abs() < 1e-3, "wc = {wc}");
    }

    #[test]
    fn high_gain_reduces_margin() {
        let pm1 = phase_margin(type1(1.0), 1e-3, 1e3, 1500)
            .phase_margin_deg
            .unwrap();
        let pm10 = phase_margin(type1(10.0), 1e-3, 1e3, 1500)
            .phase_margin_deg
            .unwrap();
        assert!(pm10 < pm1);
        assert!(pm10 > 0.0, "type-1 second-order loop is always stable");
    }

    #[test]
    fn delay_destabilizes() {
        // L = e^{-sT}/(s(s+1)) with big T goes unstable.
        let with_delay = |t: f64| {
            move |omega: f64| {
                let s = Complex64::j(omega);
                Some((-s * t).exp() / (s * (s + Complex64::ONE)))
            }
        };
        let pm_small = phase_margin(with_delay(0.1), 1e-3, 1e3, 2000)
            .phase_margin_deg
            .unwrap();
        let pm_big = phase_margin(with_delay(5.0), 1e-3, 1e3, 2000)
            .phase_margin_deg
            .unwrap();
        assert!(pm_small > 0.0);
        assert!(pm_big < 0.0, "pm with 5 s delay = {pm_big}");
        assert!(!phase_margin(with_delay(5.0), 1e-3, 1e3, 2000).is_stable());
    }

    #[test]
    fn no_crossover_reports_none_and_stable() {
        // |L| = 0.1/(1+ω²)^{1/2} < 1 everywhere.
        let l = |omega: f64| Some(Complex64::from_re(0.1) / (Complex64::j(omega) + Complex64::ONE));
        let rep = phase_margin(l, 1e-2, 1e2, 500);
        assert!(rep.phase_margin_deg.is_none());
        assert!(rep.is_stable());
        assert!(rep.crossover_omegas.is_empty());
    }

    #[test]
    fn gain_margin_of_third_order_loop() {
        // L = K/(s+1)^3 crosses -180° at ω = √3 where |L| = K/8.
        let l = |omega: f64| {
            let den = Complex64::j(omega) + Complex64::ONE;
            Some(Complex64::from_re(2.0) / (den * den * den))
        };
        let rep = phase_margin(l, 1e-3, 1e3, 4000);
        let gm = rep.gain_margin_db.unwrap();
        // Expected GM = -20 log10(2/8) = 12.04 dB.
        assert!((gm - 12.04).abs() < 0.1, "gm = {gm}");
    }

    #[test]
    fn phase_unwrapping_is_monotone_for_pure_delay() {
        // L = e^{-s}/s: phase = -90° - ω·(180/π), strictly decreasing.
        let l = |omega: f64| Some((-Complex64::j(omega)).exp() / Complex64::j(omega));
        let rep = phase_margin(l, 1e-2, 1e2, 3000);
        for w in rep.bode.windows(2) {
            assert!(w[1].phase_deg <= w[0].phase_deg + 1e-6);
        }
        // At ω = 10, unwrapped phase ≈ -90 - 573 = -663°.
        let p = rep
            .bode
            .iter()
            .min_by(|a, b| {
                (a.omega - 10.0)
                    .abs()
                    .partial_cmp(&(b.omega - 10.0).abs())
                    .unwrap()
            })
            .unwrap();
        assert!((p.phase_deg + 90.0 + 10.0f64.to_degrees()).abs() < 5.0);
    }
}
