//! Property tests for the store: canonicalization invariance under random
//! specs, quarantine of arbitrarily corrupted records, and convergence of
//! racing same-key writers. Randomness comes from `desim::SimRng` so every
//! failure is reproducible from the printed seed.

use desim::rng::SimRng;
use std::path::PathBuf;

fn tmp(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "store_prop_{tag}_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Build a random (but valid) spec object: random key subset, random value
/// kinds, in a random order.
fn random_spec(rng: &mut SimRng) -> String {
    const KEYS: [&str; 8] = [
        "seed", "k", "bytes", "label", "rates", "nested", "flag", "scale",
    ];
    let mut picked: Vec<&str> = KEYS
        .iter()
        .copied()
        .filter(|_| rng.next_f64() < 0.7)
        .collect();
    if picked.is_empty() {
        picked.push("seed");
    }
    // Fisher–Yates so field order varies run to run.
    for i in (1..picked.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        picked.swap(i, j);
    }
    let mut body = Vec::new();
    for key in &picked {
        let value = match rng.next_below(5) {
            0 => format!("{}", rng.next_below(1_000_000)),
            1 => format!("{:.6}", rng.uniform(-1e3, 1e3)),
            2 => format!("\"s{}\"", rng.next_below(100)),
            3 => format!("[{}, {}]", rng.next_below(100), rng.uniform(0.0, 1.0)),
            _ => format!("{{\"inner\": {}}}", rng.next_below(10)),
        };
        body.push(format!("\"{key}\": {value}"));
    }
    format!("{{{}}}", body.join(", "))
}

/// Reorder the top-level fields of a flat-ish spec by rebuilding it from a
/// rotated field list. Only safe for the specs `random_spec` emits.
fn rotate_fields(spec: &str) -> String {
    let inner = spec
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .expect("spec is an object");
    // Split on top-level commas only.
    let mut fields = Vec::new();
    let (mut depth, mut start, mut in_str) = (0i32, 0usize, false);
    let bytes = inner.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'{' | b'[' if !in_str => depth += 1,
            b'}' | b']' if !in_str => depth -= 1,
            b',' if !in_str && depth == 0 => {
                fields.push(inner[start..i].trim().to_string());
                start = i + 1;
            }
            _ => {}
        }
    }
    let tail = inner[start..].trim();
    if !tail.is_empty() {
        fields.push(tail.to_string());
    }
    let shift = 1.min(fields.len().saturating_sub(1));
    fields.rotate_left(shift);
    format!("{{{}}}", fields.join(", "))
}

#[test]
fn canonicalization_is_idempotent_and_order_invariant_on_random_specs() {
    let seed = 0xeccd_2016;
    let mut rng = SimRng::new(seed);
    for trial in 0..200 {
        let spec = random_spec(&mut rng);
        let canon = store::canon::canonical(&spec)
            .unwrap_or_else(|e| panic!("seed {seed} trial {trial}: canonical({spec}): {e}"));
        let again = store::canon::canonical(&canon)
            .unwrap_or_else(|e| panic!("seed {seed} trial {trial}: re-canonical: {e}"));
        assert_eq!(canon, again, "seed {seed} trial {trial}: not idempotent");

        let rotated = rotate_fields(&spec);
        let canon_rot = store::canon::canonical(&rotated)
            .unwrap_or_else(|e| panic!("seed {seed} trial {trial}: canonical({rotated}): {e}"));
        assert_eq!(
            canon, canon_rot,
            "seed {seed} trial {trial}: field order changed the canonical form\n  {spec}\n  {rotated}"
        );
        assert_eq!(
            store::spec_key("exp", &spec).unwrap().hex(),
            store::spec_key("exp", &rotated).unwrap().hex(),
            "seed {seed} trial {trial}: field order changed the key"
        );
    }
}

#[test]
fn random_payloads_round_trip_through_put_get() {
    let root = tmp("roundtrip");
    let st = store::Store::open(&root).expect("open");
    let seed = 0x51de_cafe;
    let mut rng = SimRng::new(seed);
    for trial in 0..50u64 {
        let spec = format!("{{\"trial\": {trial}}}");
        let key = st.key("prop", &spec).expect("key");
        let len = rng.next_below(4096) as usize;
        let payload: Vec<u8> = (0..len).map(|_| rng.next_below(256) as u8).collect();
        st.put(&key, &payload).expect("put");
        assert_eq!(
            st.get(&key).as_deref(),
            Some(payload.as_slice()),
            "seed {seed} trial {trial}: payload of {len} bytes did not round-trip"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn truncation_at_any_point_quarantines_instead_of_serving() {
    let root = tmp("truncate");
    let st = store::Store::open(&root).expect("open");
    let mut rng = SimRng::new(0x0bad_f11e);
    for trial in 0..25 {
        let spec = format!("{{\"trial\": {trial}}}");
        let key = st.key("prop", &spec).expect("key");
        st.put(&key, b"a perfectly good record payload")
            .expect("put");
        let path = st.record_path(&key);
        let full = std::fs::read(&path).expect("read record");
        let cut = 1 + rng.next_below(full.len() as u64 - 1) as usize;
        std::fs::write(&path, &full[..cut]).expect("truncate");
        assert_eq!(
            st.get(&key),
            None,
            "trial {trial}: truncation at byte {cut}/{} served data",
            full.len()
        );
        assert!(
            !path.exists(),
            "trial {trial}: corrupt record left under its final name"
        );
    }
    let quarantined = std::fs::read_dir(root.join("corrupt"))
        .expect("corrupt dir")
        .count();
    assert_eq!(
        quarantined, 25,
        "every truncated record must be quarantined"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn single_bit_flips_quarantine_instead_of_serving() {
    let root = tmp("bitflip");
    let st = store::Store::open(&root).expect("open");
    let mut rng = SimRng::new(0xf11e_f00d);
    for trial in 0..25 {
        let spec = format!("{{\"trial\": {trial}}}");
        let key = st.key("prop", &spec).expect("key");
        st.put(&key, b"payload protected by an fnv checksum")
            .expect("put");
        let path = st.record_path(&key);
        let mut bytes = std::fs::read(&path).expect("read record");
        let bit = rng.next_below(bytes.len() as u64 * 8);
        // In-bounds by construction: bit / 8 < bytes.len().
        bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
        std::fs::write(&path, &bytes).expect("flip");
        assert_eq!(
            st.get(&key),
            None,
            "trial {trial}: record served after flipping bit {bit}"
        );
        assert!(
            !path.exists(),
            "trial {trial}: corrupt record left under its final name"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn concurrent_same_key_writers_converge_to_one_valid_record() {
    let root = tmp("race");
    let st = store::Store::open(&root).expect("open");
    let key = st.key("prop", "{\"race\": 1}").expect("key");
    // Determinism gives every writer the same bytes for the same key, so
    // racing writers are the realistic failure mode a concurrent sweep
    // produces. All of them must land whole.
    let payload = b"the one true record for this spec".to_vec();
    let results = desim::par::par_map((0..16u32).collect::<Vec<_>>(), {
        let (root, payload) = (root.clone(), payload.clone());
        move |_| {
            let st = store::Store::open(&root).expect("open in writer");
            let key = st.key("prop", "{\"race\": 1}").expect("key in writer");
            st.put(&key, &payload).is_ok()
        }
    });
    assert!(results.iter().all(|&ok| ok), "a racing put failed");
    assert_eq!(
        st.get(&key).as_deref(),
        Some(payload.as_slice()),
        "record invalid after 16 concurrent writers"
    );
    let _ = std::fs::remove_dir_all(&root);
}
