//! Minimal JSON reader shared by the canonicalizer and record consumers.
//!
//! The workspace is dependency-free and `ecn_delay_core::json` is emit-only,
//! so the store carries its own recursive-descent reader (the same shape as
//! the `faults::spec` reader, made public here because store clients need to
//! *parse* cached records back, not just hash them). Integers are kept
//! lossless as `i128` — experiment seeds and digests exceed the exact range
//! of `f64` — and every parse error carries a byte offset.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction or exponent, kept losslessly.
    Int(i128),
    /// Any other finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as an ordered key/value list (duplicates are rejected at
    /// parse time).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object entry by key, if this value is an object and the key exists.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content widened to `f64`; `Null` reads as NaN (the emitter
    /// writes non-finite floats as `null`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Num(n) => Some(*n),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// Non-negative integer content, if it fits `u64` exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn items(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Errors name the failing byte offset.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut r = Reader {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = r.value()?;
    r.skip_ws();
    if r.pos != r.bytes.len() {
        return Err(r.msg("trailing characters after document"));
    }
    Ok(v)
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn msg(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.msg(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.msg("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.msg("invalid literal"))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect_byte(b'{')?;
        let mut entries: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(self.msg(&format!("duplicate key {key:?}")));
            }
            self.expect_byte(b':')?;
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(entries)),
                _ => return Err(self.msg("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                _ => return Err(self.msg("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.bump() != Some(b'"') {
            return Err(self.msg("expected string"));
        }
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    // \b, \f, \uXXXX never appear in the in-tree emitter's
                    // output, which is the only producer of stored records.
                    _ => return Err(self.msg("unsupported escape")),
                },
                Some(c) if c < 0x80 => out.push(c as char),
                Some(_) => {
                    // Re-read the full UTF-8 scalar from the source slice.
                    let start = self.pos - 1;
                    let rest = &self.bytes[start..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.msg("invalid UTF-8 in string"))?;
                    let Some(ch) = s.chars().next() else {
                        return Err(self.msg("unterminated string"));
                    };
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
                None => return Err(self.msg("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.msg("invalid number"))?;
        // Fraction/exponent-free numbers stay lossless integers.
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Value::Num(n)),
            _ => Err(self.msg(&format!("invalid number {text:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_stay_lossless() {
        let v = parse("{\"seed\": 18446744073709551615}").expect("parses");
        assert_eq!(v.get("seed").and_then(Value::as_u64), Some(u64::MAX));
        let v = parse("9007199254740993").expect("parses"); // 2^53 + 1
        assert_eq!(v, Value::Int(9_007_199_254_740_993));
    }

    #[test]
    fn floats_and_null_read_back() {
        let v = parse("{\"x\": 0.125, \"y\": null, \"n\": 3}").expect("parses");
        assert_eq!(v.get("x").and_then(Value::as_f64), Some(0.125));
        assert!(v.get("y").and_then(Value::as_f64).is_some_and(f64::is_nan));
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(3.0));
    }

    #[test]
    fn structural_accessors() {
        let v = parse("{\"cells\": [{\"p\": \"dcqcn\"}], \"ok\": true}").expect("parses");
        let cells = v.get("cells").and_then(Value::items).expect("array");
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].get("p").and_then(Value::as_str), Some("dcqcn"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn errors_carry_byte_offsets() {
        for (doc, needle) in [
            ("", "expected a JSON value"),
            ("{\"a\": 1} x", "trailing characters"),
            ("{\"a\": 1, \"a\": 2}", "duplicate key"),
            ("[1, 2", "expected ',' or ']'"),
            ("{\"a\" 1}", "expected ':'"),
        ] {
            let e = parse(doc).expect_err(doc);
            assert!(e.contains(needle), "{doc:?}: {e}");
            assert!(e.contains("at byte"), "{doc:?}: {e}");
        }
    }
}
