//! Scenario-spec canonicalization and content addressing.
//!
//! A store key must identify a scenario by *meaning*, not by the accidents
//! of its serialization: two renderings of the same config — different key
//! order, different whitespace, `1.50` vs `1.5` — must collide, and any
//! semantic change must not. Canonical form is therefore:
//!
//! * objects with keys sorted bytewise (recursively);
//! * compact separators (no whitespace);
//! * integers rendered losslessly, floats through Rust's shortest
//!   round-trip `Display` with a forced `.0` (exactly the
//!   `ecn_delay_core::json` float convention) and `-0.0` normalized to
//!   `0.0`;
//! * strings re-escaped with the minimal escape set.
//!
//! The key is a 64-bit FNV-1a fold over `experiment id ++ 0x00 ++ canonical
//! config` — the same hash family as the `ext_incast` report digests, so
//! the whole repo speaks one fingerprint dialect.

use crate::json::{parse, Value};
use std::fmt::Write as _;

/// FNV-1a offset basis (matches `ext_incast::report_digest`).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (matches `ext_incast::report_digest`).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Content-addressed identity of one scenario spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SpecKey(pub u64);

impl SpecKey {
    /// 16-hex-digit rendering used in paths and logs.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }

    /// Two-hex-digit shard prefix (256-way fan-out keeps directory listings
    /// short at atlas scale).
    pub fn shard(&self) -> String {
        format!("{:02x}", self.0 >> 56)
    }
}

/// Fold bytes into a running FNV-1a state.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Canonicalize a config document (see module docs). Errors are parse
/// failures with byte offsets.
pub fn canonical(config_json: &str) -> Result<String, String> {
    let v = parse(config_json)?;
    let mut out = String::new();
    render(&v, &mut out);
    Ok(out)
}

/// Compute the store key for `(experiment id, config JSON)`. The id and the
/// canonicalized config are hashed with a `0x00` separator so the pair
/// `("a", "b…")` can never collide with `("ab", "…")`.
pub fn spec_key(experiment: &str, config_json: &str) -> Result<SpecKey, String> {
    let canon = canonical(config_json)?;
    let h = fnv1a(FNV_OFFSET, experiment.as_bytes());
    let h = fnv1a(h, &[0u8]);
    Ok(SpecKey(fnv1a(h, canon.as_bytes())))
}

fn render(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Num(x) => {
            // Normalize the one float with two bit patterns; everything
            // else round-trips exactly through shortest `Display`.
            let x = if x.to_bits() == (-0.0f64).to_bits() {
                0.0
            } else {
                *x
            };
            let s = format!("{x}");
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Value::Obj(entries) => {
            let mut order: Vec<usize> = (0..entries.len()).collect();
            order.sort_by(|&a, &b| entries[a].0.cmp(&entries[b].0));
            out.push('{');
            for (n, &i) in order.iter().enumerate() {
                if n > 0 {
                    out.push(',');
                }
                render(&Value::Str(entries[i].0.clone()), out);
                out.push(':');
                render(&entries[i].1, out);
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_order_and_whitespace_are_immaterial() {
        let a = canonical("{\"b\": 1, \"a\": {\"y\": 2, \"x\": 3}}").expect("parses");
        let b = canonical("{ \"a\" : {\"x\":3,\"y\":2},\n \"b\":1 }").expect("parses");
        assert_eq!(a, b);
        assert_eq!(a, "{\"a\":{\"x\":3,\"y\":2},\"b\":1}");
        assert_eq!(
            spec_key("exp", "{\"b\": 1, \"a\": 2}").expect("key"),
            spec_key("exp", "{\"a\":2,\"b\":1}").expect("key"),
        );
    }

    #[test]
    fn float_renderings_normalize() {
        assert_eq!(canonical("1.50").expect("parses"), "1.5");
        assert_eq!(canonical("1e1").expect("parses"), "10.0");
        assert_eq!(canonical("-0.0").expect("parses"), "0.0");
        // Shortest round-trip keeps distinct values distinct.
        assert_ne!(
            canonical("0.1").expect("parses"),
            canonical("0.10000000000000002").expect("parses"),
        );
    }

    #[test]
    fn integers_survive_beyond_f64_precision() {
        let a = canonical("9007199254740993").expect("parses"); // 2^53 + 1
        let b = canonical("9007199254740992").expect("parses"); // 2^53
        assert_eq!(a, "9007199254740993");
        assert_ne!(a, b);
    }

    #[test]
    fn semantic_changes_change_the_key() {
        let base = spec_key("ext_incast", "{\"k\": 8, \"seed\": 1}").expect("key");
        let seed = spec_key("ext_incast", "{\"k\": 8, \"seed\": 2}").expect("key");
        let exp = spec_key("ext_incast2", "{\"k\": 8, \"seed\": 1}").expect("key");
        assert_ne!(base, seed);
        assert_ne!(base, exp);
        // The 0x00 separator keeps (id, config) boundaries unambiguous.
        assert_ne!(
            spec_key("ab", "{}").expect("key"),
            spec_key("a", "{}").expect("key"),
        );
    }

    #[test]
    fn key_paths_are_stable_hex() {
        let k = spec_key("fig3", "{}").expect("key");
        assert_eq!(k.hex().len(), 16);
        assert_eq!(k.shard(), k.hex()[..2].to_string());
        // Pin the value: the canonical form and FNV fold must never drift,
        // or every existing store silently invalidates.
        assert_eq!(spec_key("fig3", "{ }").expect("key"), k);
    }

    #[test]
    fn string_escapes_round_trip() {
        let c = canonical("{\"s\": \"a\\\"b\\\\c\\n\"}").expect("parses");
        assert_eq!(c, "{\"s\":\"a\\\"b\\\\c\\n\"}");
        let again = canonical(&c).expect("canonical form re-parses");
        assert_eq!(c, again);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        assert!(canonical("{\"a\": }").is_err());
        assert!(spec_key("x", "not json").is_err());
    }
}
