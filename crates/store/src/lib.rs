//! # store — crash-safe content-addressed result store
//!
//! ROADMAP item 4's serving substrate: experiment sweeps are deterministic
//! (byte-identical at any `SIM_THREADS`/`SIM_BATCH`, proven in CI), so a
//! result keyed by its scenario spec is valid forever — same spec hash,
//! same bytes. This crate provides that cache with crash safety as the
//! design center:
//!
//! * **Content addressing** ([`canon`]): a spec is `(experiment id, config
//!   JSON)`; the config is canonicalized (sorted keys, normalized floats,
//!   compact form) and folded with the id into a 64-bit FNV-1a [`SpecKey`]
//!   — the same hash family as the `ext_incast` report digests.
//! * **Atomic writes** ([`atomic`]): records are written via temp file +
//!   fsync + rename into a sharded `<root>/<2-hex>/<16-hex>.rec` layout, so
//!   a `kill -9` mid-write can never leave a half-record under a live name.
//! * **Framed records**: each record is `magic ++ payload length ++ payload
//!   ++ FNV-1a checksum`, so torn writes and bit-flips are *detected* on
//!   open, moved to `<root>/corrupt/` for post-mortem, and recomputed
//!   rather than served.
//! * **Counters**: hits / misses / corrupt / writes as process-global
//!   atomics, mirrored into `obs::metrics` (`store.hit` …) when metrics
//!   are enabled, so `--metrics` snapshots show cache behavior per run.
//!
//! The store never invents data: it returns exactly the payload bytes a
//! completed run recorded, or `None`. Resumability falls out — a rerun
//! after a crash serves finished cells from the store and recomputes only
//! the remainder, byte-identically.

#![deny(missing_docs)]

pub mod atomic;
pub mod canon;
pub mod json;

pub use atomic::write_atomic;
pub use canon::{canonical, spec_key, SpecKey};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Record container format marker; bump the trailing digit on any framing
/// change so old stores read as corrupt instead of silently misparsing.
const MAGIC: &[u8; 8] = b"ECNSTOR1";

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static CORRUPT: AtomicU64 = AtomicU64::new(0);
static WRITES: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-global store counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counters {
    /// Records served whole.
    pub hits: u64,
    /// Lookups that found nothing servable (including corrupt records).
    pub misses: u64,
    /// Records that failed frame validation and were quarantined.
    pub corrupt: u64,
    /// Records written.
    pub writes: u64,
}

/// Read the process-global counters.
pub fn counters() -> Counters {
    Counters {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        corrupt: CORRUPT.load(Ordering::Relaxed),
        writes: WRITES.load(Ordering::Relaxed),
    }
}

/// Reset the process-global counters (tests and long-lived drivers).
pub fn reset_counters() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    CORRUPT.store(0, Ordering::Relaxed);
    WRITES.store(0, Ordering::Relaxed);
}

/// Frame a payload for durable storage: `MAGIC ++ len(u64 LE) ++ payload ++
/// fnv1a(payload)(u64 LE)`.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&payload_checksum(payload).to_le_bytes());
    out
}

/// Validate a framed record and return its payload slice.
pub fn unframe(bytes: &[u8]) -> Result<&[u8], FrameError> {
    if bytes.len() < 24 {
        return Err(FrameError::Truncated);
    }
    if &bytes[..8] != MAGIC {
        return Err(FrameError::BadMagic);
    }
    // Bounds: the length check above guarantees 16 header bytes.
    let mut len_le = [0u8; 8];
    len_le.copy_from_slice(&bytes[8..16]);
    let len = u64::from_le_bytes(len_le) as usize;
    if bytes.len() != 24 + len {
        return Err(FrameError::Truncated);
    }
    let payload = &bytes[16..16 + len];
    let mut sum_le = [0u8; 8];
    sum_le.copy_from_slice(&bytes[16 + len..]);
    // simlint: allow(float-cmp) — u64 checksum equality, exact by definition (no floats involved)
    if u64::from_le_bytes(sum_le) != payload_checksum(payload) {
        return Err(FrameError::ChecksumMismatch);
    }
    Ok(payload)
}

/// Why a record failed frame validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Too short for the header/trailer, or the length field disagrees with
    /// the file size (the torn-write signature).
    Truncated,
    /// The magic marker is absent or from an incompatible format version.
    BadMagic,
    /// Length frame intact but the payload checksum disagrees (bit rot).
    ChecksumMismatch,
}

impl FrameError {
    /// Short label used in quarantine names and flight entries.
    pub fn label(&self) -> &'static str {
        match self {
            FrameError::Truncated => "truncated",
            FrameError::BadMagic => "bad_magic",
            FrameError::ChecksumMismatch => "checksum",
        }
    }
}

fn payload_checksum(payload: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in payload {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A content-addressed record store rooted at one directory.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Open (creating as needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Store> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Store { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Compute the key for a spec; see [`spec_key`].
    pub fn key(&self, experiment: &str, config_json: &str) -> Result<SpecKey, String> {
        spec_key(experiment, config_json)
    }

    /// Final on-disk path of a record.
    pub fn record_path(&self, key: &SpecKey) -> PathBuf {
        self.root
            .join(key.shard())
            .join(format!("{}.rec", key.hex()))
    }

    /// Fetch a record's payload. `None` means "recompute": absent, or
    /// present but failing frame validation — in which case the record is
    /// quarantined to `<root>/corrupt/` (rename, preserving the evidence),
    /// counted, and noted on the flight recorder.
    pub fn get(&self, key: &SpecKey) -> Option<Vec<u8>> {
        let path = self.record_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                MISSES.fetch_add(1, Ordering::Relaxed);
                obs::metrics::counter_inc("store.miss");
                return None;
            }
        };
        match unframe(&bytes) {
            Ok(payload) => {
                let payload = payload.to_vec();
                HITS.fetch_add(1, Ordering::Relaxed);
                obs::metrics::counter_inc("store.hit");
                Some(payload)
            }
            Err(e) => {
                self.quarantine(key, &path, e);
                MISSES.fetch_add(1, Ordering::Relaxed);
                CORRUPT.fetch_add(1, Ordering::Relaxed);
                obs::metrics::counter_inc("store.miss");
                obs::metrics::counter_inc("store.corrupt");
                None
            }
        }
    }

    /// Write a record (framed, atomic). Overwrites an existing record for
    /// the key — by the determinism contract the payload is identical, so
    /// concurrent same-key writers converge on one valid record whichever
    /// rename lands last.
    pub fn put(&self, key: &SpecKey, payload: &[u8]) -> io::Result<()> {
        write_atomic(&self.record_path(key), &frame(payload))?;
        WRITES.fetch_add(1, Ordering::Relaxed);
        obs::metrics::counter_inc("store.write");
        Ok(())
    }

    /// Move a failed record out of the serving tree into
    /// `<root>/corrupt/<key>.<why>.<n>` for post-mortem inspection.
    fn quarantine(&self, key: &SpecKey, path: &Path, why: FrameError) {
        let dir = self.root.join("corrupt");
        if fs::create_dir_all(&dir).is_err() {
            // Can't quarantine: remove so the corpse is at least not
            // re-validated (and re-counted) on every lookup.
            let _ = fs::remove_file(path);
            return;
        }
        // A low sequence suffix keeps repeat quarantines of one key apart.
        let mut dest = dir.join(format!("{}.{}", key.hex(), why.label()));
        for n in 1..1000u32 {
            if !dest.exists() {
                break;
            }
            dest = dir.join(format!("{}.{}.{n}", key.hex(), why.label()));
        }
        let _ = fs::rename(path, &dest);
        obs::flight::record(0.0, "store_quarantine", key.0 as f64, None);
    }

    /// Record a supervision verdict (quarantined spec, timeout, panic) for
    /// the key as a durable note under `<root>/quarantine/`. Notes are
    /// advisory observability — lookups never serve or skip based on them.
    pub fn put_quarantine_note(&self, key: &SpecKey, note_json: &str) -> io::Result<()> {
        let path = self
            .root
            .join("quarantine")
            .join(format!("{}.json", key.hex()));
        write_atomic(&path, note_json.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> Store {
        let d = std::env::temp_dir().join(format!("store_lib_{tag}_{}", std::process::id(),));
        let _ = fs::remove_dir_all(&d);
        Store::open(d).expect("open")
    }

    #[test]
    fn frame_round_trip_and_rejections() {
        let f = frame(b"hello");
        assert_eq!(unframe(&f).expect("valid"), b"hello");
        assert_eq!(unframe(&f[..f.len() - 1]), Err(FrameError::Truncated));
        assert_eq!(unframe(b"short"), Err(FrameError::Truncated));
        let mut bad = f.clone();
        bad[0] ^= 0xff;
        assert_eq!(unframe(&bad), Err(FrameError::BadMagic));
        let mut flip = f.clone();
        flip[17] ^= 0x01; // one payload bit
        assert_eq!(unframe(&flip), Err(FrameError::ChecksumMismatch));
        // Empty payloads are legal records.
        assert_eq!(unframe(&frame(b"")).expect("valid"), b"");
    }

    #[test]
    fn put_get_round_trip_with_counters() {
        let s = tmp_store("roundtrip");
        reset_counters();
        let k = s.key("t", "{\"a\": 1}").expect("key");
        assert_eq!(s.get(&k), None);
        s.put(&k, b"payload").expect("put");
        assert_eq!(s.get(&k).as_deref(), Some(&b"payload"[..]));
        let c = counters();
        assert_eq!((c.hits, c.misses, c.corrupt, c.writes), (1, 1, 0, 1));
        assert!(s.record_path(&k).starts_with(s.root()));
        let _ = fs::remove_dir_all(s.root());
    }

    #[test]
    fn corrupt_record_is_quarantined_and_recomputable() {
        let s = tmp_store("corrupt");
        let k = s.key("t", "{\"b\": 2}").expect("key");
        s.put(&k, b"data").expect("put");
        // Flip one payload bit on disk.
        let path = s.record_path(&k);
        let mut bytes = fs::read(&path).expect("read");
        bytes[17] ^= 0x01;
        // Direct low-level write: this test *manufactures* the corruption
        // the store exists to detect.
        write_atomic(&path, &bytes).expect("rewrite");
        assert_eq!(s.get(&k), None, "corrupt record must not be served");
        assert!(!path.exists(), "corpse must leave the serving tree");
        let quarantined: Vec<_> = fs::read_dir(s.root().join("corrupt"))
            .expect("corrupt dir")
            .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(quarantined.len(), 1, "{quarantined:?}");
        assert!(quarantined[0].contains(&k.hex()), "{quarantined:?}");
        assert!(quarantined[0].contains("checksum"), "{quarantined:?}");
        // A fresh put serves again.
        s.put(&k, b"data").expect("re-put");
        assert_eq!(s.get(&k).as_deref(), Some(&b"data"[..]));
        let _ = fs::remove_dir_all(s.root());
    }

    #[test]
    fn quarantine_notes_are_durable_and_advisory() {
        let s = tmp_store("notes");
        let k = s.key("t", "{}").expect("key");
        s.put_quarantine_note(&k, "{\"kind\": \"timeout\"}")
            .expect("note");
        let p = s
            .root()
            .join("quarantine")
            .join(format!("{}.json", k.hex()));
        assert!(fs::read_to_string(p).expect("read").contains("timeout"));
        // Advisory: a subsequent put/get pair is unaffected.
        s.put(&k, b"ok").expect("put");
        assert_eq!(s.get(&k).as_deref(), Some(&b"ok"[..]));
        let _ = fs::remove_dir_all(s.root());
    }
}
