//! The sanctioned crash-safe file writer.
//!
//! Every durable artifact in the workspace funnels through
//! [`write_atomic`]: payload bytes land in a unique temp file in the target
//! directory, are fsynced, and are renamed over the final path, with the
//! directory fsynced afterwards. A reader can therefore never observe a
//! half-written file under the final name — after a `kill -9` the record is
//! either whole or absent (a stray `.tmp.*` is ignored by every reader and
//! harmless). This file is the `no-raw-fs-write` allowlist: everywhere else
//! in the simulation crates, bare `std::fs::write` / `File::create` is a
//! lint error precisely because it can tear.

use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-process temp-name disambiguator: concurrent writers in one process
/// must not collide on the temp path (cross-process uniqueness comes from
/// the pid component).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Atomically replace `path` with `bytes` (temp file + fsync + rename +
/// directory fsync). Parent directories are created as needed. Concurrent
/// writers to the same path each complete their own temp/rename pass; the
/// last rename wins and the file is a whole record from exactly one writer
/// at every instant.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    fs::create_dir_all(&parent)?;
    let base = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
        .to_string_lossy()
        .into_owned();
    let tmp = parent.join(format!(
        "{base}.tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    // Scoped so the handle is closed before the rename.
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    if let Err(e) = fs::rename(&tmp, path) {
        // Leave no droppings on the failure path.
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    // Persist the directory entry itself: rename durability needs the
    // parent fsynced, or a crash can forget the file existed at all.
    // Best-effort on filesystems that refuse directory handles.
    if let Ok(dir) = File::open(&parent) {
        let _ = dir.sync_all();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "store_atomic_{tag}_{}_{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn writes_land_whole_and_create_parents() {
        let root = tmp_root("whole");
        let path = root.join("aa/bb/record.rec");
        write_atomic(&path, b"payload").expect("write");
        assert_eq!(fs::read(&path).expect("read"), b"payload");
        // Overwrite replaces, never appends.
        write_atomic(&path, b"v2").expect("rewrite");
        assert_eq!(fs::read(&path).expect("read"), b"v2");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn no_temp_droppings_after_success() {
        let root = tmp_root("clean");
        let path = root.join("r.rec");
        write_atomic(&path, b"x").expect("write");
        let names: Vec<String> = fs::read_dir(&root)
            .expect("dir")
            .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["r.rec".to_string()], "{names:?}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn pathological_path_is_an_error_not_a_panic() {
        let e = write_atomic(Path::new("/"), b"x");
        assert!(e.is_err());
    }
}
