//! Topology: nodes, simplex links, and static shortest-path routing.

use desim::SimDuration;
use faults::SimError;
use std::collections::VecDeque;

/// Node identifier (host or switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Simplex link identifier; a "cable" is two simplex links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub usize);

/// What a node is. Hosts terminate flows; switches forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// End host with a NIC.
    Host,
    /// Store-and-forward switch.
    Switch,
}

/// One simplex link.
#[derive(Debug, Clone)]
pub struct Link {
    /// Transmitting node (owns the egress queue).
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Line rate in bits per second.
    pub bandwidth_bps: f64,
    /// Propagation delay.
    pub prop_delay: SimDuration,
}

/// A static network: nodes, links, and precomputed next-hop routing.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<NodeKind>,
    links: Vec<Link>,
    /// Outgoing links per node.
    out_links: Vec<Vec<LinkId>>,
    /// `route[src][dst]` = first link on a shortest path, or `None`.
    route: Vec<Vec<Option<LinkId>>>,
}

impl Topology {
    /// Build from nodes and links; computes all-pairs next-hop routes by
    /// BFS (all links weight 1). Panics if the topology fails a sanity
    /// check — a misconfigured experiment should fail loudly at build time.
    /// [`Topology::try_new`] is the non-panicking equivalent.
    pub fn new(nodes: Vec<NodeKind>, links: Vec<Link>) -> Self {
        Self::try_new(nodes, links).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build from nodes and links, returning a descriptive [`SimError`] if
    /// any link has an out-of-range endpoint, a non-positive or non-finite
    /// capacity, or any host pair is disconnected.
    pub fn try_new(nodes: Vec<NodeKind>, links: Vec<Link>) -> Result<Self, SimError> {
        let bad = |detail: String| Err(SimError::topology("Topology::new", detail));
        let n = nodes.len();
        let mut out_links = vec![Vec::new(); n];
        for (i, l) in links.iter().enumerate() {
            if l.src.0 >= n || l.dst.0 >= n {
                return bad(format!(
                    "link {i} endpoint out of range ({} -> {}, {n} nodes)",
                    l.src.0, l.dst.0
                ));
            }
            if !(l.bandwidth_bps.is_finite() && l.bandwidth_bps > 0.0) {
                return bad(format!(
                    "link {i} bandwidth must be positive and finite, got {} (zero-capacity \
                     links cannot serialize packets)",
                    l.bandwidth_bps
                ));
            }
            out_links[l.src.0].push(LinkId(i));
        }
        let mut route = vec![vec![None; n]; n];
        // BFS from every destination over reversed edges, recording for each
        // node the link that moves one hop closer to the destination.
        for dst in 0..n {
            let mut dist = vec![usize::MAX; n];
            dist[dst] = 0;
            let mut queue = VecDeque::from([dst]);
            while let Some(v) = queue.pop_front() {
                // Any link u -> v extends the tree to u.
                for (li, l) in links.iter().enumerate() {
                    if l.dst.0 == v && dist[l.src.0] == usize::MAX {
                        dist[l.src.0] = dist[v] + 1;
                        route[l.src.0][dst] = Some(LinkId(li));
                        queue.push_back(l.src.0);
                    }
                }
            }
            for src in 0..n {
                if src != dst
                    && matches!(nodes[src], NodeKind::Host)
                    && matches!(nodes[dst], NodeKind::Host)
                    && route[src][dst].is_none()
                {
                    return bad(format!("no route from host {src} to host {dst}"));
                }
            }
        }
        Ok(Topology {
            nodes,
            links,
            out_links,
            route,
        })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of simplex links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Node kind.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.nodes[n.0]
    }

    /// Link descriptor.
    pub fn link(&self, l: LinkId) -> &Link {
        &self.links[l.0]
    }

    /// The next link from `at` toward `dst`.
    pub fn next_hop(&self, at: NodeId, dst: NodeId) -> Option<LinkId> {
        self.route[at.0][dst.0]
    }

    /// Outgoing links of a node.
    pub fn out_links(&self, n: NodeId) -> &[LinkId] {
        &self.out_links[n.0]
    }

    /// All host node ids.
    pub fn hosts(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| matches!(self.nodes[i], NodeKind::Host))
            .map(NodeId)
            .collect()
    }

    /// The validation topology of §3.1/§4.1: `n` sender hosts and one
    /// receiver host around a single switch. Every link has the given rate
    /// and delay. Returns `(topology, senders, receiver)`.
    ///
    /// Node layout: 0..n = senders, n = receiver, n+1 = switch.
    pub fn single_switch(
        n_senders: usize,
        bandwidth_bps: f64,
        prop_delay: SimDuration,
    ) -> (Topology, Vec<NodeId>, NodeId) {
        let mut nodes = vec![NodeKind::Host; n_senders + 1];
        nodes.push(NodeKind::Switch);
        let switch = NodeId(n_senders + 1);
        let receiver = NodeId(n_senders);
        let mut links = Vec::new();
        for h in 0..=n_senders {
            let host = NodeId(h);
            links.push(Link {
                src: host,
                dst: switch,
                bandwidth_bps,
                prop_delay,
            });
            links.push(Link {
                src: switch,
                dst: host,
                bandwidth_bps,
                prop_delay,
            });
        }
        let topo = Topology::new(nodes, links);
        let senders = (0..n_senders).map(NodeId).collect();
        (topo, senders, receiver)
    }

    /// The Figure 13 dumbbell: `n` senders on SW1, `n` receivers on SW2,
    /// one bottleneck link SW1→SW2. All links share the given rate/delay.
    /// Returns `(topology, senders, receivers, bottleneck_link)` where the
    /// bottleneck id refers to the SW1→SW2 direction.
    ///
    /// Node layout: 0..n = senders, n..2n = receivers, 2n = SW1, 2n+1 = SW2.
    pub fn dumbbell(
        n_pairs: usize,
        bandwidth_bps: f64,
        prop_delay: SimDuration,
    ) -> (Topology, Vec<NodeId>, Vec<NodeId>, LinkId) {
        let mut nodes = vec![NodeKind::Host; 2 * n_pairs];
        nodes.push(NodeKind::Switch); // SW1
        nodes.push(NodeKind::Switch); // SW2
        let sw1 = NodeId(2 * n_pairs);
        let sw2 = NodeId(2 * n_pairs + 1);
        let mut links = Vec::new();
        let duplex = |a: NodeId, b: NodeId, links: &mut Vec<Link>| {
            links.push(Link {
                src: a,
                dst: b,
                bandwidth_bps,
                prop_delay,
            });
            links.push(Link {
                src: b,
                dst: a,
                bandwidth_bps,
                prop_delay,
            });
        };
        for s in 0..n_pairs {
            duplex(NodeId(s), sw1, &mut links);
        }
        for r in 0..n_pairs {
            duplex(NodeId(n_pairs + r), sw2, &mut links);
        }
        let bottleneck = LinkId(links.len());
        duplex(sw1, sw2, &mut links);
        let topo = Topology::new(nodes, links);
        let senders = (0..n_pairs).map(NodeId).collect();
        let receivers = (n_pairs..2 * n_pairs).map(NodeId).collect();
        (topo, senders, receivers, bottleneck)
    }
}

impl Topology {
    /// A "parking lot" multi-bottleneck chain (the paper's future-work
    /// scenario): `n_hops` switches in a line; one host pair spans the
    /// whole chain (the "long" flow path) and one host pair hangs off each
    /// switch for per-hop cross traffic.
    ///
    /// Returns `(topology, long_src, long_dst, cross_pairs)` where
    /// `cross_pairs[i]` are the (src, dst) hosts whose traffic crosses only
    /// hop `i → i+1`.
    ///
    /// Node layout: 0 = long source, 1 = long destination, then cross hosts
    /// in pairs, then switches.
    pub fn parking_lot(
        n_hops: usize,
        bandwidth_bps: f64,
        prop_delay: SimDuration,
    ) -> (Topology, NodeId, NodeId, Vec<(NodeId, NodeId)>) {
        assert!(n_hops >= 1, "need at least one bottleneck hop");
        let n_switches = n_hops + 1;
        let n_cross = n_hops; // one cross pair per hop
        let mut nodes = vec![NodeKind::Host; 2 + 2 * n_cross];
        for _ in 0..n_switches {
            nodes.push(NodeKind::Switch);
        }
        let switch = |i: usize| NodeId(2 + 2 * n_cross + i);
        let long_src = NodeId(0);
        let long_dst = NodeId(1);
        let mut links = Vec::new();
        let duplex = |a: NodeId, b: NodeId, links: &mut Vec<Link>| {
            links.push(Link {
                src: a,
                dst: b,
                bandwidth_bps,
                prop_delay,
            });
            links.push(Link {
                src: b,
                dst: a,
                bandwidth_bps,
                prop_delay,
            });
        };
        duplex(long_src, switch(0), &mut links);
        duplex(long_dst, switch(n_switches - 1), &mut links);
        for h in 0..n_hops {
            duplex(switch(h), switch(h + 1), &mut links);
        }
        let mut cross_pairs = Vec::new();
        for h in 0..n_hops {
            let src = NodeId(2 + 2 * h);
            let dst = NodeId(3 + 2 * h);
            // Cross source enters at switch h, exits at switch h+1.
            duplex(src, switch(h), &mut links);
            duplex(dst, switch(h + 1), &mut links);
            cross_pairs.push((src, dst));
        }
        let topo = Topology::new(nodes, links);
        (topo, long_src, long_dst, cross_pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn single_switch_routes() {
        let (topo, senders, receiver) = Topology::single_switch(3, 10e9, us(1));
        assert_eq!(topo.node_count(), 5);
        for &s in &senders {
            let l1 = topo.next_hop(s, receiver).unwrap();
            assert_eq!(topo.link(l1).dst, NodeId(4), "first hop is the switch");
            let l2 = topo.next_hop(NodeId(4), receiver).unwrap();
            assert_eq!(topo.link(l2).dst, receiver);
        }
        // Reverse path exists too (for ACK/CNP).
        assert!(topo.next_hop(receiver, senders[0]).is_some());
    }

    #[test]
    fn dumbbell_routes_cross_bottleneck() {
        let (topo, senders, receivers, bottleneck) = Topology::dumbbell(4, 10e9, us(1));
        assert_eq!(topo.node_count(), 10);
        let sw1 = NodeId(8);
        for (&s, &r) in senders.iter().zip(&receivers) {
            // sender -> SW1 -> SW2 -> receiver
            let l1 = topo.next_hop(s, r).unwrap();
            assert_eq!(topo.link(l1).dst, sw1);
            let l2 = topo.next_hop(sw1, r).unwrap();
            assert_eq!(l2, bottleneck, "all pairs cross the bottleneck");
        }
    }

    #[test]
    fn cross_pairs_also_routed() {
        let (topo, senders, receivers, _) = Topology::dumbbell(3, 10e9, us(1));
        // Any sender to any receiver must be routable (random pairing in
        // the FCT workload).
        for &s in &senders {
            for &r in &receivers {
                assert!(topo.next_hop(s, r).is_some());
            }
        }
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn disconnected_hosts_panic() {
        let nodes = vec![NodeKind::Host, NodeKind::Host];
        Topology::new(nodes, vec![]);
    }

    #[test]
    fn try_new_rejects_disconnected_hosts() {
        let nodes = vec![NodeKind::Host, NodeKind::Host];
        let e = Topology::try_new(nodes, vec![]).expect_err("disconnected");
        assert!(e.to_string().contains("no route from host"), "{e}");
    }

    #[test]
    fn try_new_rejects_zero_capacity_link() {
        let nodes = vec![NodeKind::Host, NodeKind::Host];
        let mk = |bw: f64| {
            vec![
                Link {
                    src: NodeId(0),
                    dst: NodeId(1),
                    bandwidth_bps: bw,
                    prop_delay: us(1),
                },
                Link {
                    src: NodeId(1),
                    dst: NodeId(0),
                    bandwidth_bps: 10e9,
                    prop_delay: us(1),
                },
            ]
        };
        for bad_bw in [0.0, -10e9, f64::NAN, f64::INFINITY] {
            let e = Topology::try_new(nodes.clone(), mk(bad_bw)).expect_err("bad bandwidth");
            let msg = e.to_string();
            assert!(msg.contains("link 0 bandwidth"), "{msg}");
            assert!(matches!(e, SimError::InvalidTopology { .. }), "{e:?}");
        }
        assert!(Topology::try_new(nodes, mk(10e9)).is_ok());
    }

    #[test]
    fn try_new_rejects_out_of_range_endpoint() {
        let nodes = vec![NodeKind::Host, NodeKind::Host];
        let links = vec![Link {
            src: NodeId(0),
            dst: NodeId(9),
            bandwidth_bps: 10e9,
            prop_delay: us(1),
        }];
        let e = Topology::try_new(nodes, links).expect_err("bad endpoint");
        assert!(e.to_string().contains("endpoint out of range"), "{e}");
    }

    #[test]
    fn out_links_indexed() {
        let (topo, _, _) = Topology::single_switch(2, 10e9, us(1));
        let switch = NodeId(3);
        // Switch has one egress link per attached host.
        assert_eq!(topo.out_links(switch).len(), 3);
        for &l in topo.out_links(switch) {
            assert_eq!(topo.link(l).src, switch);
        }
    }

    #[test]
    fn parking_lot_routes_span_hops() {
        let (topo, long_src, long_dst, cross) = Topology::parking_lot(3, 10e9, us(1));
        // Long path: src -> sw0 -> sw1 -> sw2 -> sw3 -> dst = 5 hops.
        let mut at = long_src;
        let mut hops = 0;
        while at != long_dst {
            let l = topo.next_hop(at, long_dst).expect("long route");
            at = topo.link(l).dst;
            hops += 1;
            assert!(hops < 10, "routing loop");
        }
        assert_eq!(hops, 5);
        // Every cross pair is two hops apart (src -> sw_h -> sw_h+1 -> dst).
        for &(s, d) in &cross {
            let mut at = s;
            let mut hops = 0;
            while at != d {
                let l = topo.next_hop(at, d).expect("cross route");
                at = topo.link(l).dst;
                hops += 1;
            }
            assert_eq!(hops, 3);
        }
    }

    #[test]
    fn hosts_listed() {
        let (topo, _, _) = Topology::single_switch(2, 10e9, us(1));
        assert_eq!(topo.hosts().len(), 3);
    }
}
