//! Topology: nodes, simplex links, and static shortest-path routing.
//!
//! Routing is equal-cost multipath (ECMP): for every `(node, destination)`
//! pair the table stores *all* first links on shortest paths, flattened
//! into one contiguous array (`route_offsets` + `route_links`) in ascending
//! link-id order. Single-path topologies (the paper's validation setups)
//! have one entry per pair and behave exactly as before; Clos fabrics
//! ([`Topology::fat_tree`]) expose their full path diversity, and flows
//! spread across it by a deterministic hash — see [`Topology::next_hop_for`].

use desim::SimDuration;
use faults::SimError;
use std::collections::VecDeque;

/// Node identifier (host or switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Simplex link identifier; a "cable" is two simplex links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub usize);

/// What a node is. Hosts terminate flows; switches forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// End host with a NIC.
    Host,
    /// Store-and-forward switch.
    Switch,
}

/// One simplex link.
#[derive(Debug, Clone)]
pub struct Link {
    /// Transmitting node (owns the egress queue).
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Line rate in bits per second.
    pub bandwidth_bps: f64,
    /// Propagation delay.
    pub prop_delay: SimDuration,
}

/// A static network: nodes, links, and precomputed next-hop routing.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<NodeKind>,
    links: Vec<Link>,
    /// Outgoing links per node.
    out_links: Vec<Vec<LinkId>>,
    /// ECMP route table, flattened: the equal-cost next hops from node `at`
    /// toward `dst` are `route_links[route_offsets[dst·n + at] ..
    /// route_offsets[dst·n + at + 1]]`, sorted by link id. One flat array
    /// instead of n² `Vec`s keeps the table cache-dense and cheap to build.
    route_offsets: Vec<u32>,
    route_links: Vec<LinkId>,
}

impl Topology {
    /// Build from nodes and links; computes all-pairs next-hop routes by
    /// BFS (all links weight 1). Panics if the topology fails a sanity
    /// check — a misconfigured experiment should fail loudly at build time.
    /// [`Topology::try_new`] is the non-panicking equivalent.
    pub fn new(nodes: Vec<NodeKind>, links: Vec<Link>) -> Self {
        Self::try_new(nodes, links).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build from nodes and links, returning a descriptive [`SimError`] if
    /// any link has an out-of-range endpoint, a non-positive or non-finite
    /// capacity, or any host pair is disconnected.
    pub fn try_new(nodes: Vec<NodeKind>, links: Vec<Link>) -> Result<Self, SimError> {
        let bad = |detail: String| Err(SimError::topology("Topology::new", detail));
        let n = nodes.len();
        let mut out_links = vec![Vec::new(); n];
        for (i, l) in links.iter().enumerate() {
            if l.src.0 >= n || l.dst.0 >= n {
                return bad(format!(
                    "link {i} endpoint out of range ({} -> {}, {n} nodes)",
                    l.src.0, l.dst.0
                ));
            }
            if !(l.bandwidth_bps.is_finite() && l.bandwidth_bps > 0.0) {
                return bad(format!(
                    "link {i} bandwidth must be positive and finite, got {} (zero-capacity \
                     links cannot serialize packets)",
                    l.bandwidth_bps
                ));
            }
            out_links[l.src.0].push(LinkId(i));
        }
        // Reverse adjacency (links indexed by their receiving node) so each
        // per-destination BFS is O(V + E) instead of rescanning every link
        // per dequeued node — the difference between milliseconds and
        // minutes on a k=16 fat-tree (1 344 nodes, 6 144 simplex links).
        let mut in_links = vec![Vec::new(); n];
        for (li, l) in links.iter().enumerate() {
            in_links[l.dst.0].push(LinkId(li));
        }
        let mut route_offsets = Vec::with_capacity(n * n + 1);
        route_offsets.push(0u32);
        let mut route_links = Vec::new();
        // Scratch buffers reused across destinations (capacity persists).
        let mut dist = vec![u32::MAX; n];
        let mut hops: Vec<Vec<LinkId>> = vec![Vec::new(); n];
        for dst in 0..n {
            dist.iter_mut().for_each(|d| *d = u32::MAX);
            dist[dst] = 0;
            let mut queue = VecDeque::from([dst]);
            while let Some(v) = queue.pop_front() {
                for &li in &in_links[v] {
                    let u = links[li.0].src.0;
                    if dist[u] == u32::MAX {
                        dist[u] = dist[v] + 1;
                        queue.push_back(u);
                    }
                }
            }
            // Every link that steps one hop closer to `dst` is an equal-cost
            // next hop; scanning links in id order keeps each set sorted.
            for (li, l) in links.iter().enumerate() {
                if dist[l.dst.0] != u32::MAX && dist[l.src.0] == dist[l.dst.0] + 1 {
                    hops[l.src.0].push(LinkId(li));
                }
            }
            for (src, h) in hops.iter_mut().enumerate() {
                if src != dst
                    && matches!(nodes[src], NodeKind::Host)
                    && matches!(nodes[dst], NodeKind::Host)
                    && h.is_empty()
                {
                    return bad(format!("no route from host {src} to host {dst}"));
                }
                route_links.extend_from_slice(h);
                route_offsets.push(route_links.len() as u32);
                h.clear();
            }
        }
        Ok(Topology {
            nodes,
            links,
            out_links,
            route_offsets,
            route_links,
        })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of simplex links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Node kind.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.nodes[n.0]
    }

    /// Link descriptor.
    pub fn link(&self, l: LinkId) -> &Link {
        &self.links[l.0]
    }

    /// All equal-cost next hops from `at` toward `dst`, sorted by link id.
    pub fn ecmp_next_hops(&self, at: NodeId, dst: NodeId) -> &[LinkId] {
        let idx = dst.0 * self.nodes.len() + at.0;
        let lo = self.route_offsets[idx] as usize;
        let hi = self.route_offsets[idx + 1] as usize;
        &self.route_links[lo..hi]
    }

    /// The next link from `at` toward `dst` (lowest-id equal-cost hop).
    pub fn next_hop(&self, at: NodeId, dst: NodeId) -> Option<LinkId> {
        self.ecmp_next_hops(at, dst).first().copied()
    }

    /// The next link from `at` toward `dst` for a flow whose ECMP hash is
    /// `flow_hash`: deterministic hash-mod selection over the equal-cost
    /// set, with the hop node mixed in so one flow's choices at successive
    /// fan-out stages decorrelate (as switch-local hash functions do). On
    /// single-path topologies this is exactly [`Topology::next_hop`].
    pub fn next_hop_for(&self, at: NodeId, dst: NodeId, flow_hash: u64) -> Option<LinkId> {
        let hops = self.ecmp_next_hops(at, dst);
        match hops.len() {
            0 => None,
            // In-bounds: this arm matches exactly when `hops.len() == 1`.
            1 => Some(hops[0]),
            n => {
                // murmur3-style finalizer over (flow hash, hop node).
                let mut x = flow_hash ^ (at.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                x ^= x >> 33;
                x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
                x ^= x >> 33;
                x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
                x ^= x >> 33;
                Some(hops[(x % n as u64) as usize])
            }
        }
    }

    /// Outgoing links of a node.
    pub fn out_links(&self, n: NodeId) -> &[LinkId] {
        &self.out_links[n.0]
    }

    /// All host node ids.
    pub fn hosts(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| matches!(self.nodes[i], NodeKind::Host))
            .map(NodeId)
            .collect()
    }

    /// The validation topology of §3.1/§4.1: `n` sender hosts and one
    /// receiver host around a single switch. Every link has the given rate
    /// and delay. Returns `(topology, senders, receiver)`.
    ///
    /// Node layout: 0..n = senders, n = receiver, n+1 = switch.
    pub fn single_switch(
        n_senders: usize,
        bandwidth_bps: f64,
        prop_delay: SimDuration,
    ) -> (Topology, Vec<NodeId>, NodeId) {
        let mut nodes = vec![NodeKind::Host; n_senders + 1];
        nodes.push(NodeKind::Switch);
        let switch = NodeId(n_senders + 1);
        let receiver = NodeId(n_senders);
        let mut links = Vec::new();
        for h in 0..=n_senders {
            let host = NodeId(h);
            links.push(Link {
                src: host,
                dst: switch,
                bandwidth_bps,
                prop_delay,
            });
            links.push(Link {
                src: switch,
                dst: host,
                bandwidth_bps,
                prop_delay,
            });
        }
        let topo = Topology::new(nodes, links);
        let senders = (0..n_senders).map(NodeId).collect();
        (topo, senders, receiver)
    }

    /// The Figure 13 dumbbell: `n` senders on SW1, `n` receivers on SW2,
    /// one bottleneck link SW1→SW2. All links share the given rate/delay.
    /// Returns `(topology, senders, receivers, bottleneck_link)` where the
    /// bottleneck id refers to the SW1→SW2 direction.
    ///
    /// Node layout: 0..n = senders, n..2n = receivers, 2n = SW1, 2n+1 = SW2.
    pub fn dumbbell(
        n_pairs: usize,
        bandwidth_bps: f64,
        prop_delay: SimDuration,
    ) -> (Topology, Vec<NodeId>, Vec<NodeId>, LinkId) {
        let mut nodes = vec![NodeKind::Host; 2 * n_pairs];
        nodes.push(NodeKind::Switch); // SW1
        nodes.push(NodeKind::Switch); // SW2
        let sw1 = NodeId(2 * n_pairs);
        let sw2 = NodeId(2 * n_pairs + 1);
        let mut links = Vec::new();
        let duplex = |a: NodeId, b: NodeId, links: &mut Vec<Link>| {
            links.push(Link {
                src: a,
                dst: b,
                bandwidth_bps,
                prop_delay,
            });
            links.push(Link {
                src: b,
                dst: a,
                bandwidth_bps,
                prop_delay,
            });
        };
        for s in 0..n_pairs {
            duplex(NodeId(s), sw1, &mut links);
        }
        for r in 0..n_pairs {
            duplex(NodeId(n_pairs + r), sw2, &mut links);
        }
        let bottleneck = LinkId(links.len());
        duplex(sw1, sw2, &mut links);
        let topo = Topology::new(nodes, links);
        let senders = (0..n_pairs).map(NodeId).collect();
        let receivers = (n_pairs..2 * n_pairs).map(NodeId).collect();
        (topo, senders, receivers, bottleneck)
    }
}

impl Topology {
    /// A "parking lot" multi-bottleneck chain (the paper's future-work
    /// scenario): `n_hops` switches in a line; one host pair spans the
    /// whole chain (the "long" flow path) and one host pair hangs off each
    /// switch for per-hop cross traffic.
    ///
    /// Returns `(topology, long_src, long_dst, cross_pairs)` where
    /// `cross_pairs[i]` are the (src, dst) hosts whose traffic crosses only
    /// hop `i → i+1`.
    ///
    /// Node layout: 0 = long source, 1 = long destination, then cross hosts
    /// in pairs, then switches.
    pub fn parking_lot(
        n_hops: usize,
        bandwidth_bps: f64,
        prop_delay: SimDuration,
    ) -> (Topology, NodeId, NodeId, Vec<(NodeId, NodeId)>) {
        assert!(n_hops >= 1, "need at least one bottleneck hop");
        let n_switches = n_hops + 1;
        let n_cross = n_hops; // one cross pair per hop
        let mut nodes = vec![NodeKind::Host; 2 + 2 * n_cross];
        for _ in 0..n_switches {
            nodes.push(NodeKind::Switch);
        }
        let switch = |i: usize| NodeId(2 + 2 * n_cross + i);
        let long_src = NodeId(0);
        let long_dst = NodeId(1);
        let mut links = Vec::new();
        let duplex = |a: NodeId, b: NodeId, links: &mut Vec<Link>| {
            links.push(Link {
                src: a,
                dst: b,
                bandwidth_bps,
                prop_delay,
            });
            links.push(Link {
                src: b,
                dst: a,
                bandwidth_bps,
                prop_delay,
            });
        };
        duplex(long_src, switch(0), &mut links);
        duplex(long_dst, switch(n_switches - 1), &mut links);
        for h in 0..n_hops {
            duplex(switch(h), switch(h + 1), &mut links);
        }
        let mut cross_pairs = Vec::new();
        for h in 0..n_hops {
            let src = NodeId(2 + 2 * h);
            let dst = NodeId(3 + 2 * h);
            // Cross source enters at switch h, exits at switch h+1.
            duplex(src, switch(h), &mut links);
            duplex(dst, switch(h + 1), &mut links);
            cross_pairs.push((src, dst));
        }
        let topo = Topology::new(nodes, links);
        (topo, long_src, long_dst, cross_pairs)
    }

    /// A k-ary fat-tree (three-stage Clos, Al-Fares layout): `k` pods of
    /// `k/2` edge and `k/2` aggregation switches, `(k/2)²` core switches,
    /// and `k³/4` hosts — k=8 gives the 128-host fabric the datacenter
    /// incast experiments run on, k=16 scales to 1 024 hosts. Every link
    /// has the given rate and delay (no oversubscription), so any host pair
    /// in distinct pods has `(k/2)²` equal-cost paths for ECMP to spread
    /// flows over.
    ///
    /// Returns `(topology, hosts)`; hosts are numbered pod-major, so hosts
    /// `[p·k²/4, (p+1)·k²/4)` share pod `p`.
    ///
    /// Node layout: hosts first, then edge switches (pod-major), then
    /// aggregation switches (pod-major), then core switches.
    ///
    /// Panics unless `k` is even and within 4..=16 (k=16 already builds a
    /// 1 344-node, 6 144-link fabric; larger fabrics want a sparser route
    /// representation first).
    pub fn fat_tree(
        k: usize,
        bandwidth_bps: f64,
        prop_delay: SimDuration,
    ) -> (Topology, Vec<NodeId>) {
        assert!(
            (4..=16).contains(&k) && k.is_multiple_of(2),
            "fat_tree: k must be even and in 4..=16, got {k}"
        );
        let half = k / 2;
        let n_hosts = k * k * k / 4;
        let n_edge = k * half;
        let n_agg = k * half;
        let n_core = half * half;
        let mut nodes = vec![NodeKind::Host; n_hosts];
        for _ in 0..(n_edge + n_agg + n_core) {
            nodes.push(NodeKind::Switch);
        }
        let edge = |pod: usize, i: usize| NodeId(n_hosts + pod * half + i);
        let agg = |pod: usize, i: usize| NodeId(n_hosts + n_edge + pod * half + i);
        let core = |j: usize| NodeId(n_hosts + n_edge + n_agg + j);
        let mut links = Vec::new();
        let mut duplex = |a: NodeId, b: NodeId| {
            links.push(Link {
                src: a,
                dst: b,
                bandwidth_bps,
                prop_delay,
            });
            links.push(Link {
                src: b,
                dst: a,
                bandwidth_bps,
                prop_delay,
            });
        };
        // Hosts → edge: host h sits under edge switch (h / (k/2)) of pod
        // (h / (k²/4)).
        for h in 0..n_hosts {
            let pod = h / (k * k / 4);
            let e = (h % (k * k / 4)) / half;
            duplex(NodeId(h), edge(pod, e));
        }
        // Edge ↔ aggregation: full bipartite mesh within each pod.
        for pod in 0..k {
            for e in 0..half {
                for a in 0..half {
                    duplex(edge(pod, e), agg(pod, a));
                }
            }
        }
        // Aggregation ↔ core: aggregation switch a of every pod connects to
        // core group a (cores a·k/2 .. (a+1)·k/2).
        for pod in 0..k {
            for a in 0..half {
                for c in 0..half {
                    duplex(agg(pod, a), core(a * half + c));
                }
            }
        }
        let topo = Topology::new(nodes, links);
        let hosts = (0..n_hosts).map(NodeId).collect();
        (topo, hosts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn single_switch_routes() {
        let (topo, senders, receiver) = Topology::single_switch(3, 10e9, us(1));
        assert_eq!(topo.node_count(), 5);
        for &s in &senders {
            let l1 = topo.next_hop(s, receiver).unwrap();
            assert_eq!(topo.link(l1).dst, NodeId(4), "first hop is the switch");
            let l2 = topo.next_hop(NodeId(4), receiver).unwrap();
            assert_eq!(topo.link(l2).dst, receiver);
        }
        // Reverse path exists too (for ACK/CNP).
        assert!(topo.next_hop(receiver, senders[0]).is_some());
    }

    #[test]
    fn dumbbell_routes_cross_bottleneck() {
        let (topo, senders, receivers, bottleneck) = Topology::dumbbell(4, 10e9, us(1));
        assert_eq!(topo.node_count(), 10);
        let sw1 = NodeId(8);
        for (&s, &r) in senders.iter().zip(&receivers) {
            // sender -> SW1 -> SW2 -> receiver
            let l1 = topo.next_hop(s, r).unwrap();
            assert_eq!(topo.link(l1).dst, sw1);
            let l2 = topo.next_hop(sw1, r).unwrap();
            assert_eq!(l2, bottleneck, "all pairs cross the bottleneck");
        }
    }

    #[test]
    fn cross_pairs_also_routed() {
        let (topo, senders, receivers, _) = Topology::dumbbell(3, 10e9, us(1));
        // Any sender to any receiver must be routable (random pairing in
        // the FCT workload).
        for &s in &senders {
            for &r in &receivers {
                assert!(topo.next_hop(s, r).is_some());
            }
        }
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn disconnected_hosts_panic() {
        let nodes = vec![NodeKind::Host, NodeKind::Host];
        Topology::new(nodes, vec![]);
    }

    #[test]
    fn try_new_rejects_disconnected_hosts() {
        let nodes = vec![NodeKind::Host, NodeKind::Host];
        let e = Topology::try_new(nodes, vec![]).expect_err("disconnected");
        assert!(e.to_string().contains("no route from host"), "{e}");
    }

    #[test]
    fn try_new_rejects_zero_capacity_link() {
        let nodes = vec![NodeKind::Host, NodeKind::Host];
        let mk = |bw: f64| {
            vec![
                Link {
                    src: NodeId(0),
                    dst: NodeId(1),
                    bandwidth_bps: bw,
                    prop_delay: us(1),
                },
                Link {
                    src: NodeId(1),
                    dst: NodeId(0),
                    bandwidth_bps: 10e9,
                    prop_delay: us(1),
                },
            ]
        };
        for bad_bw in [0.0, -10e9, f64::NAN, f64::INFINITY] {
            let e = Topology::try_new(nodes.clone(), mk(bad_bw)).expect_err("bad bandwidth");
            let msg = e.to_string();
            assert!(msg.contains("link 0 bandwidth"), "{msg}");
            assert!(matches!(e, SimError::InvalidTopology { .. }), "{e:?}");
        }
        assert!(Topology::try_new(nodes, mk(10e9)).is_ok());
    }

    #[test]
    fn try_new_rejects_out_of_range_endpoint() {
        let nodes = vec![NodeKind::Host, NodeKind::Host];
        let links = vec![Link {
            src: NodeId(0),
            dst: NodeId(9),
            bandwidth_bps: 10e9,
            prop_delay: us(1),
        }];
        let e = Topology::try_new(nodes, links).expect_err("bad endpoint");
        assert!(e.to_string().contains("endpoint out of range"), "{e}");
    }

    #[test]
    fn out_links_indexed() {
        let (topo, _, _) = Topology::single_switch(2, 10e9, us(1));
        let switch = NodeId(3);
        // Switch has one egress link per attached host.
        assert_eq!(topo.out_links(switch).len(), 3);
        for &l in topo.out_links(switch) {
            assert_eq!(topo.link(l).src, switch);
        }
    }

    #[test]
    fn parking_lot_routes_span_hops() {
        let (topo, long_src, long_dst, cross) = Topology::parking_lot(3, 10e9, us(1));
        // Long path: src -> sw0 -> sw1 -> sw2 -> sw3 -> dst = 5 hops.
        let mut at = long_src;
        let mut hops = 0;
        while at != long_dst {
            let l = topo.next_hop(at, long_dst).expect("long route");
            at = topo.link(l).dst;
            hops += 1;
            assert!(hops < 10, "routing loop");
        }
        assert_eq!(hops, 5);
        // Every cross pair is two hops apart (src -> sw_h -> sw_h+1 -> dst).
        for &(s, d) in &cross {
            let mut at = s;
            let mut hops = 0;
            while at != d {
                let l = topo.next_hop(at, d).expect("cross route");
                at = topo.link(l).dst;
                hops += 1;
            }
            assert_eq!(hops, 3);
        }
    }

    #[test]
    fn hosts_listed() {
        let (topo, _, _) = Topology::single_switch(2, 10e9, us(1));
        assert_eq!(topo.hosts().len(), 3);
    }

    #[test]
    fn fat_tree_k4_shape() {
        let (topo, hosts) = Topology::fat_tree(4, 10e9, us(1));
        assert_eq!(hosts.len(), 16); // k³/4
        assert_eq!(topo.node_count(), 16 + 8 + 8 + 4);
        // 16 host cables + 4 pods × 4 edge-agg cables + 8 aggs × 2 core
        // cables, two simplex links each.
        assert_eq!(topo.link_count(), 2 * (16 + 16 + 16));
        // Every switch has exactly k ports.
        for n in 0..topo.node_count() {
            let node = NodeId(n);
            if matches!(topo.kind(node), NodeKind::Switch) {
                assert_eq!(topo.out_links(node).len(), 4, "switch {n} port count");
            }
        }
    }

    #[test]
    fn fat_tree_cross_pod_path_diversity() {
        let (topo, hosts) = Topology::fat_tree(4, 10e9, us(1));
        // Hosts 0 and 15 sit in pods 0 and 3: the edge switch fans out to
        // k/2 aggs, each agg to k/2 cores → (k/2)² = 4 distinct paths, and
        // ECMP must expose the full fan-out at each stage.
        let src = hosts[0];
        let dst = hosts[15];
        let uplink = topo.next_hop(src, dst).expect("routed");
        let edge_sw = topo.link(uplink).dst;
        assert_eq!(topo.ecmp_next_hops(edge_sw, dst).len(), 2);
        let agg_sw = topo.link(topo.ecmp_next_hops(edge_sw, dst)[0]).dst;
        assert_eq!(topo.ecmp_next_hops(agg_sw, dst).len(), 2);
        // Same-pod pairs never leave the pod: path length 4 (host-edge-agg-
        // edge-host) or 2 under the same edge.
        let same_edge = topo.next_hop(hosts[0], hosts[1]).expect("routed");
        assert_eq!(topo.link(same_edge).dst, edge_sw);
    }

    #[test]
    fn fat_tree_hash_routing_is_deterministic_and_valid() {
        let (topo, hosts) = Topology::fat_tree(4, 10e9, us(1));
        let src = hosts[2];
        let dst = hosts[13];
        for flow_hash in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            // Walk the hash-selected path hop by hop; it must reach dst in
            // exactly 6 hops (host-edge-agg-core-agg-edge-host) and repeat
            // identically on a second walk.
            let walk = || {
                let mut at = src;
                let mut path = Vec::new();
                while at != dst {
                    let l = topo.next_hop_for(at, dst, flow_hash).expect("routed");
                    path.push(l);
                    at = topo.link(l).dst;
                    assert!(path.len() <= 6, "routing loop for hash {flow_hash}");
                }
                path
            };
            let path = walk();
            assert_eq!(path.len(), 6);
            assert_eq!(path, walk(), "hash routing must be deterministic");
        }
        // Distinct hashes do spread over distinct paths.
        let distinct: std::collections::BTreeSet<Vec<usize>> = (0..32u64)
            .map(|h| {
                let mut at = src;
                let mut path = Vec::new();
                while at != dst {
                    let l = topo.next_hop_for(at, dst, h).expect("routed");
                    path.push(l.0);
                    at = topo.link(l).dst;
                }
                path
            })
            .collect();
        assert!(distinct.len() >= 3, "32 hashes must hit ≥3 of the 4 paths");
    }

    #[test]
    fn single_path_topologies_ignore_the_hash() {
        let (topo, senders, receiver) = Topology::single_switch(3, 10e9, us(1));
        for &s in &senders {
            let base = topo.next_hop(s, receiver);
            for h in [0u64, 7, u64::MAX] {
                assert_eq!(topo.next_hop_for(s, receiver, h), base);
            }
        }
    }

    #[test]
    #[should_panic(expected = "k must be even")]
    fn fat_tree_rejects_odd_k() {
        Topology::fat_tree(5, 10e9, us(1));
    }
}
