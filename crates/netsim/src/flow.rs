//! Sender/receiver flow state and pacing models.

use crate::cc::CongestionControl;
use crate::topology::NodeId;
use crate::types::FlowId;
use desim::{SimDuration, SimTime};

/// How the sender spaces its packets (paper §4.2, "Impact of per-burst
/// pacing").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pacing {
    /// Hardware rate limiter: every packet is individually spaced at the
    /// current rate (DCQCN; also TIMELY's "per-packet pacing" mode used for
    /// the model validation).
    PerPacket,
    /// TIMELY's implementation behaviour: chunks of `seg_bytes` go out
    /// back-to-back at line rate, with inter-chunk gaps chosen so the
    /// average equals the target rate.
    PerChunk {
        /// Segment size in bytes (16–64 KB in the paper).
        seg_bytes: u32,
    },
}

/// A flow to inject into the simulation.
#[derive(Debug)]
pub struct FlowSpec {
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Bytes to transfer; `None` = long-lived (runs until sim end).
    pub size_bytes: Option<u64>,
    /// Start time.
    pub start: SimTime,
    /// Pacing model.
    pub pacing: Pacing,
    /// The congestion-control algorithm instance.
    pub cc: Box<dyn CongestionControl>,
    /// Completion-ACK interval in bytes: the receiver acks the last packet
    /// of every `ack_chunk_bytes` window (drives RTT sampling). For DCQCN
    /// this can be large (RTT unused); TIMELY sets it to the segment size.
    pub ack_chunk_bytes: u32,
}

/// Sender-side runtime state (engine-internal).
#[derive(Debug)]
pub struct SenderFlow {
    /// Flow id.
    pub id: FlowId,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Total size, if finite.
    pub size_bytes: Option<u64>,
    /// Flow start time.
    pub start: SimTime,
    /// Pacing model.
    pub pacing: Pacing,
    /// Congestion control.
    pub cc: Box<dyn CongestionControl>,
    /// Current rate (bps) as last applied from the CC.
    pub rate_bps: f64,
    /// Next payload byte offset to send.
    pub next_offset: u64,
    /// Payload bytes acknowledged as transmitted to the CC's byte counter.
    pub sent_payload: u64,
    /// Earliest time the next packet/chunk may start.
    pub next_tx: SimTime,
    /// Bytes remaining in the current chunk (per-chunk pacing).
    pub chunk_remaining: u32,
    /// When the current chunk started (echoed in the completion ACK).
    pub chunk_started: SimTime,
    /// Bytes since the last ACK-requested packet.
    pub since_ack_request: u32,
    /// ACK chunk size.
    pub ack_chunk_bytes: u32,
    /// Completion time (when the last payload byte was acknowledged as
    /// delivered — the engine uses last-byte arrival at the receiver).
    pub completed: Option<SimTime>,
}

impl SenderFlow {
    /// Remaining payload bytes, `u64::MAX` for long-lived flows.
    pub fn remaining(&self) -> u64 {
        match self.size_bytes {
            Some(sz) => sz.saturating_sub(self.next_offset),
            None => u64::MAX,
        }
    }

    /// True once every payload byte has been handed to the NIC.
    pub fn fully_sent(&self) -> bool {
        self.remaining() == 0
    }

    /// The inter-packet gap at the current rate for a packet of `bytes`.
    pub fn packet_gap(&self, bytes: u32) -> SimDuration {
        SimDuration::serialization(bytes as u64, self.rate_bps.max(1e3))
    }
}

/// Receiver-side runtime state (engine-internal).
#[derive(Debug, Default)]
pub struct ReceiverFlow {
    /// Payload bytes received so far.
    pub received: u64,
    /// Last time a CNP was generated for this flow (τ coalescing).
    pub last_cnp: Option<SimTime>,
    /// Time the last payload byte arrived (FCT endpoint).
    pub last_byte_at: Option<SimTime>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::FixedRate;

    fn sender(rate: f64) -> SenderFlow {
        SenderFlow {
            id: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            size_bytes: Some(5_000),
            start: SimTime::ZERO,
            pacing: Pacing::PerPacket,
            cc: Box::new(FixedRate { rate_bps: rate }),
            rate_bps: rate,
            next_offset: 0,
            sent_payload: 0,
            next_tx: SimTime::ZERO,
            chunk_remaining: 0,
            chunk_started: SimTime::ZERO,
            since_ack_request: 0,
            ack_chunk_bytes: 16_000,
            completed: None,
        }
    }

    #[test]
    fn remaining_counts_down() {
        let mut f = sender(1e9);
        assert_eq!(f.remaining(), 5_000);
        f.next_offset = 4_000;
        assert_eq!(f.remaining(), 1_000);
        f.next_offset = 5_000;
        assert!(f.fully_sent());
    }

    #[test]
    fn long_lived_never_finishes() {
        let mut f = sender(1e9);
        f.size_bytes = None;
        f.next_offset = u64::MAX / 2;
        assert!(!f.fully_sent());
    }

    #[test]
    fn packet_gap_matches_rate() {
        let f = sender(1e9); // 1 Gbps
                             // 1000 bytes at 1 Gbps = 8 µs.
        assert_eq!(f.packet_gap(1000), SimDuration::from_micros(8));
    }
}
