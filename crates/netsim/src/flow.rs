//! Sender/receiver flow state (struct-of-arrays) and pacing models.
//!
//! Flow state is stored column-wise: one `Vec` per field, indexed by
//! [`FlowId`]. The engine's hot paths (pacer firings, ACK/CNP handling,
//! completion checks) each touch only two or three fields of a flow, so the
//! columnar layout keeps those accesses on dense, homogeneous cache lines
//! instead of striding over ~130-byte row structs — the difference is
//! measurable once incast workloads push the flow table past a thousand
//! entries. Columns are append-only and grow in lockstep via
//! [`SenderFlows::push`] / [`ReceiverFlows::push`].

use crate::cc::CongestionControl;
use crate::topology::NodeId;
use crate::types::FlowId;
use desim::SimTime;

/// How the sender spaces its packets (paper §4.2, "Impact of per-burst
/// pacing").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pacing {
    /// Hardware rate limiter: every packet is individually spaced at the
    /// current rate (DCQCN; also TIMELY's "per-packet pacing" mode used for
    /// the model validation).
    PerPacket,
    /// TIMELY's implementation behaviour: chunks of `seg_bytes` go out
    /// back-to-back at line rate, with inter-chunk gaps chosen so the
    /// average equals the target rate.
    PerChunk {
        /// Segment size in bytes (16–64 KB in the paper).
        seg_bytes: u32,
    },
}

/// A flow to inject into the simulation.
#[derive(Debug)]
pub struct FlowSpec {
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Bytes to transfer; `None` = long-lived (runs until sim end).
    pub size_bytes: Option<u64>,
    /// Start time.
    pub start: SimTime,
    /// Pacing model.
    pub pacing: Pacing,
    /// The congestion-control algorithm instance.
    pub cc: Box<dyn CongestionControl>,
    /// Completion-ACK interval in bytes: the receiver acks the last packet
    /// of every `ack_chunk_bytes` window (drives RTT sampling). For DCQCN
    /// this can be large (RTT unused); TIMELY sets it to the segment size.
    pub ack_chunk_bytes: u32,
}

/// Sender-side runtime state, one column per field (engine-internal).
#[derive(Debug, Default)]
pub struct SenderFlows {
    /// Source host.
    pub src: Vec<NodeId>,
    /// Destination host.
    pub dst: Vec<NodeId>,
    /// Total size, if finite.
    pub size_bytes: Vec<Option<u64>>,
    /// Flow start time.
    pub start: Vec<SimTime>,
    /// Pacing model.
    pub pacing: Vec<Pacing>,
    /// Congestion control instances.
    pub cc: Vec<Box<dyn CongestionControl>>,
    /// Current rate (bps) as last applied from the CC.
    pub rate_bps: Vec<f64>,
    /// Next payload byte offset to send.
    pub next_offset: Vec<u64>,
    /// Payload bytes reported to the CC's byte counter.
    pub sent_payload: Vec<u64>,
    /// Earliest time the next packet/chunk may start.
    pub next_tx: Vec<SimTime>,
    /// When the current chunk started (echoed in the completion ACK).
    pub chunk_started: Vec<SimTime>,
    /// Bytes since the last ACK-requested packet.
    pub since_ack_request: Vec<u32>,
    /// ACK chunk size.
    pub ack_chunk_bytes: Vec<u32>,
    /// Completion time (last payload byte arrived at the receiver).
    pub completed: Vec<Option<SimTime>>,
    /// Deterministic ECMP hash: seeds the per-hop equal-cost path choice on
    /// multipath topologies (fat-trees). Derived from the engine seed and
    /// the flow's endpoints, never from a runtime RNG.
    pub path_hash: Vec<u64>,
}

impl SenderFlows {
    /// Number of registered flows.
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// True when no flow has been registered.
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }

    /// Append a flow built from `spec`, returning its id. All columns grow
    /// together, so `FlowId(len - 1)` indexes every column.
    pub fn push(&mut self, spec: FlowSpec, path_hash: u64) -> FlowId {
        let id = FlowId(self.len());
        self.src.push(spec.src);
        self.dst.push(spec.dst);
        self.size_bytes.push(spec.size_bytes);
        self.start.push(spec.start);
        self.pacing.push(spec.pacing);
        self.cc.push(spec.cc);
        self.rate_bps.push(0.0);
        self.next_offset.push(0);
        self.sent_payload.push(0);
        self.next_tx.push(spec.start);
        self.chunk_started.push(spec.start);
        self.since_ack_request.push(0);
        self.ack_chunk_bytes.push(spec.ack_chunk_bytes.max(1));
        self.completed.push(None);
        self.path_hash.push(path_hash);
        id
    }

    /// Remaining payload bytes of flow `f`, `u64::MAX` for long-lived flows.
    pub fn remaining(&self, f: FlowId) -> u64 {
        match self.size_bytes[f.0] {
            Some(sz) => sz.saturating_sub(self.next_offset[f.0]),
            None => u64::MAX,
        }
    }

    /// True once every payload byte of flow `f` was handed to the NIC.
    pub fn fully_sent(&self, f: FlowId) -> bool {
        self.remaining(f) == 0
    }
}

/// Receiver-side runtime state, one column per field (engine-internal).
#[derive(Debug, Default)]
pub struct ReceiverFlows {
    /// Payload bytes received so far.
    pub received: Vec<u64>,
    /// Last time a CNP was generated for this flow (τ coalescing).
    pub last_cnp: Vec<Option<SimTime>>,
    /// Time the last payload byte arrived (FCT endpoint).
    pub last_byte_at: Vec<Option<SimTime>>,
}

impl ReceiverFlows {
    /// Append the receiver-side state for one new flow.
    pub fn push(&mut self) {
        self.received.push(0);
        self.last_cnp.push(None);
        self.last_byte_at.push(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::FixedRate;

    fn spec(size: Option<u64>) -> FlowSpec {
        FlowSpec {
            src: NodeId(0),
            dst: NodeId(1),
            size_bytes: size,
            start: SimTime::ZERO,
            pacing: Pacing::PerPacket,
            cc: Box::new(FixedRate { rate_bps: 1e9 }),
            ack_chunk_bytes: 16_000,
        }
    }

    #[test]
    fn remaining_counts_down() {
        let mut flows = SenderFlows::default();
        let f = flows.push(spec(Some(5_000)), 0);
        assert_eq!(flows.remaining(f), 5_000);
        flows.next_offset[f.0] = 4_000;
        assert_eq!(flows.remaining(f), 1_000);
        flows.next_offset[f.0] = 5_000;
        assert!(flows.fully_sent(f));
    }

    #[test]
    fn long_lived_never_finishes() {
        let mut flows = SenderFlows::default();
        let f = flows.push(spec(None), 0);
        flows.next_offset[f.0] = u64::MAX / 2;
        assert!(!flows.fully_sent(f));
    }

    #[test]
    fn columns_grow_in_lockstep() {
        let mut flows = SenderFlows::default();
        let a = flows.push(spec(Some(1)), 7);
        let b = flows.push(spec(Some(2)), 9);
        assert_eq!((a, b), (FlowId(0), FlowId(1)));
        assert_eq!(flows.len(), 2);
        assert_eq!(flows.path_hash, vec![7, 9]);
        assert_eq!(flows.completed.len(), 2);
        assert_eq!(flows.ack_chunk_bytes.len(), 2);
    }
}
