//! # netsim — packet-level discrete-event network simulator
//!
//! The paper validates its fluid models against packet-level NS-3
//! simulations ("Our simulations in NS3 implement all known features of the
//! protocols"). This crate is that substrate, built from scratch on the
//! `desim` kernel:
//!
//! * [`topology`] — nodes (hosts/switches), simplex links with bandwidth and
//!   propagation delay, shortest-path static routing; builders for the
//!   paper's two topologies (N-senders-one-switch for validation, the
//!   Figure 13 dumbbell for the FCT study);
//! * switch behaviour inside [`engine`] — output-queued, store-and-
//!   forward forwarding with per-port FIFO data queues, a strict-priority
//!   control queue (CNPs/ACKs are prioritized, as both protocols do for
//!   feedback), shared-buffer accounting, and RED/ECN marking on **egress**
//!   (mark decided when the packet starts transmission, from the queue at
//!   that instant — the behaviour §5.2 identifies as the key ECN advantage)
//!   or optionally on **ingress** (Figure 17's destabilizing variant);
//! * optional PFC-style PAUSE/RESUME per link (an extension; the paper's
//!   analysis assumes ECN triggers before PFC and ignores it);
//! * [`flow`] — sender flows with per-packet pacing (hardware rate limiters,
//!   DCQCN) or per-chunk pacing (TIMELY's burst transmission of 16–64 KB
//!   segments at line rate), receiver-side CNP generation with the `τ`
//!   coalescing timer, and per-chunk RTT completion samples;
//! * [`cc`] — the congestion-control trait implemented by the `protocols`
//!   crate (DCQCN, TIMELY, Patched TIMELY);
//! * [`engine`] — the deterministic event loop plus queue/rate/FCT tracing.
//!
//! Everything is deterministic given the configuration and seed.

#![deny(missing_docs)]

pub mod cc;
pub mod config;
pub mod engine;
pub mod flow;
pub mod topology;
pub mod trace;
pub mod types;

pub use cc::{CcEvent, CcUpdate, CongestionControl};
pub use config::{MarkingMode, PfcConfig, RedConfig};
pub use engine::{Engine, EngineConfig, FctRecord, SimReport};
pub use flow::{FlowSpec, Pacing};
pub use topology::{LinkId, NodeId, Topology};
pub use trace::LinkTraceMap;
pub use types::{Packet, PacketKind};
