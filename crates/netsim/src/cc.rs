//! The congestion-control interface between the engine and the protocols.
//!
//! The engine owns pacing and packetization; a [`CongestionControl`]
//! implementation owns the rate. The engine feeds it events (CNP arrival,
//! RTT completion sample, transmitted bytes, its own timers) and applies the
//! returned rate and timer requests. This is exactly the division of labour
//! in RoCEv2 NICs: the rate limiter is hardware, the update rules are the
//! protocol.

use desim::{SimDuration, SimTime};

/// Events delivered to a congestion-control instance.
#[derive(Debug, Clone, Copy)]
pub enum CcEvent {
    /// A CNP arrived (DCQCN's congestion signal).
    Cnp,
    /// A chunk-completion RTT sample (TIMELY's congestion signal).
    RttSample {
        /// The measured round-trip time.
        rtt: SimDuration,
    },
    /// The sender transmitted `bytes` more payload bytes (drives DCQCN's
    /// byte counter).
    SentBytes {
        /// Newly transmitted payload bytes.
        bytes: u64,
    },
    /// A timer previously requested via [`CcUpdate::timers`] fired.
    Timer {
        /// The protocol-defined timer kind that fired.
        kind: u8,
    },
}

/// The protocol's response to an event.
#[derive(Debug, Clone, Default)]
pub struct CcUpdate {
    /// New sending rate in bits/second, if changed.
    pub new_rate_bps: Option<f64>,
    /// Timers to (re)arm: `(kind, fire_at)`. Re-arming a kind replaces any
    /// pending timer of that kind.
    pub timers: Vec<(u8, SimTime)>,
}

impl CcUpdate {
    /// No action.
    pub fn none() -> Self {
        CcUpdate::default()
    }

    /// Set the rate only.
    pub fn rate(bps: f64) -> Self {
        CcUpdate {
            new_rate_bps: Some(bps),
            timers: Vec::new(),
        }
    }

    /// Add a timer request.
    pub fn with_timer(mut self, kind: u8, at: SimTime) -> Self {
        self.timers.push((kind, at));
        self
    }
}

/// A rate-based congestion-control algorithm.
pub trait CongestionControl: std::fmt::Debug {
    /// Called once when the flow starts; returns the initial rate (bps) and
    /// any initial timers.
    fn on_start(&mut self, now: SimTime, line_rate_bps: f64) -> CcUpdate;

    /// Handle an event.
    fn on_event(&mut self, now: SimTime, event: CcEvent) -> CcUpdate;

    /// Current rate in bits/second (for tracing).
    fn current_rate_bps(&self) -> f64;

    /// Apply a mid-run fault-plane parameter perturbation: multiply the
    /// targeted knob by `scale`. The default ignores the request, so
    /// controllers without the targeted parameter are unaffected (e.g.
    /// TIMELY has no `R_AI`). Protocols opt in per [`faults::ParamTarget`].
    fn perturb(&mut self, _target: faults::ParamTarget, _scale: f64) {}
}

/// A fixed-rate sender (no congestion control) — the baseline for tests and
/// for exercising raw queue dynamics.
#[derive(Debug, Clone)]
pub struct FixedRate {
    /// The constant rate in bits/second.
    pub rate_bps: f64,
}

impl CongestionControl for FixedRate {
    fn on_start(&mut self, _now: SimTime, _line_rate_bps: f64) -> CcUpdate {
        CcUpdate::rate(self.rate_bps)
    }

    fn on_event(&mut self, _now: SimTime, _event: CcEvent) -> CcUpdate {
        CcUpdate::none()
    }

    fn current_rate_bps(&self) -> f64 {
        self.rate_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_rate_never_reacts() {
        let mut cc = FixedRate { rate_bps: 5e9 };
        let up = cc.on_start(SimTime::ZERO, 10e9);
        assert_eq!(up.new_rate_bps, Some(5e9));
        let up = cc.on_event(SimTime::ZERO, CcEvent::Cnp);
        assert!(up.new_rate_bps.is_none() && up.timers.is_empty());
        assert_eq!(cc.current_rate_bps(), 5e9);
    }

    #[test]
    fn update_builder() {
        let up = CcUpdate::rate(1e9).with_timer(2, SimTime::from_micros(55));
        assert_eq!(up.new_rate_bps, Some(1e9));
        assert_eq!(up.timers, vec![(2, SimTime::from_micros(55))]);
    }
}
