//! Core simulator value types: packets and flow identifiers.

use crate::topology::NodeId;
use desim::SimTime;

/// Flow identifier (index into the engine's flow table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub usize);

/// What a packet is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// A data segment carrying `payload` bytes of the flow.
    Data {
        /// Cumulative sequence: offset of the first payload byte.
        offset: u64,
        /// Payload bytes in this packet.
        payload: u32,
        /// True when the receiver should emit a completion ACK after this
        /// packet (last packet of a pacing chunk — TIMELY's RTT probe).
        ack_request: bool,
        /// True on the final packet of a finite flow.
        last_of_flow: bool,
        /// When the first byte of this packet's chunk left the sender;
        /// echoed in the completion ACK so the RTT sample spans the whole
        /// chunk (hardware encodes this in the WQE; we carry it inline).
        chunk_sent_at: SimTime,
    },
    /// Completion acknowledgement for a chunk (carries the echoed send
    /// timestamp so the sender can compute the RTT sample).
    Ack {
        /// When the first byte of the acknowledged chunk left the sender.
        chunk_sent_at: SimTime,
        /// Bytes acknowledged by this completion event.
        chunk_bytes: u32,
    },
    /// Congestion Notification Packet (DCQCN NP → RP).
    Cnp,
}

/// A packet in flight or queued.
///
/// Simulator luxury: metadata that real hardware would encode in headers
/// (timestamps, flow ids) is carried directly; only `size_bytes` affects
/// timing.
#[derive(Debug, Clone, Copy)]
pub struct Packet {
    /// Globally unique packet id (diagnostics).
    pub id: u64,
    /// The flow this packet belongs to.
    pub flow: FlowId,
    /// Origin host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Wire size in bytes (headers included).
    pub size_bytes: u32,
    /// Payload kind.
    pub kind: PacketKind,
    /// ECN Congestion-Experienced mark.
    pub ecn_marked: bool,
    /// When the packet entered the network at its source NIC.
    pub injected_at: SimTime,
}

impl Packet {
    /// True for CNP/ACK control packets (strict-priority, never marked).
    pub fn is_control(&self) -> bool {
        matches!(self.kind, PacketKind::Ack { .. } | PacketKind::Cnp)
    }

    /// Payload bytes carried (0 for control packets).
    pub fn payload_bytes(&self) -> u64 {
        match self.kind {
            PacketKind::Data { payload, .. } => payload as u64,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_packet(payload: u32) -> Packet {
        Packet {
            id: 1,
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            size_bytes: payload + 40,
            kind: PacketKind::Data {
                offset: 0,
                payload,
                ack_request: false,
                last_of_flow: false,
                chunk_sent_at: SimTime::ZERO,
            },
            ecn_marked: false,
            injected_at: SimTime::ZERO,
        }
    }

    #[test]
    fn control_classification() {
        let d = data_packet(1000);
        assert!(!d.is_control());
        assert_eq!(d.payload_bytes(), 1000);

        let mut cnp = d;
        cnp.kind = PacketKind::Cnp;
        assert!(cnp.is_control());
        assert_eq!(cnp.payload_bytes(), 0);

        let mut ack = d;
        ack.kind = PacketKind::Ack {
            chunk_sent_at: SimTime::ZERO,
            chunk_bytes: 16_000,
        };
        assert!(ack.is_control());
    }
}
