//! Core simulator value types: packets and flow identifiers.

use crate::topology::NodeId;
use desim::SimTime;

/// Flow identifier (index into the engine's flow table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub usize);

/// What a packet is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// A data segment carrying `payload` bytes of the flow.
    Data {
        /// Cumulative sequence: offset of the first payload byte.
        offset: u64,
        /// Payload bytes in this packet.
        payload: u32,
        /// True when the receiver should emit a completion ACK after this
        /// packet (last packet of a pacing chunk — TIMELY's RTT probe).
        ack_request: bool,
        /// True on the final packet of a finite flow.
        last_of_flow: bool,
        /// When the first byte of this packet's chunk left the sender;
        /// echoed in the completion ACK so the RTT sample spans the whole
        /// chunk (hardware encodes this in the WQE; we carry it inline).
        chunk_sent_at: SimTime,
    },
    /// Completion acknowledgement for a chunk (carries the echoed send
    /// timestamp so the sender can compute the RTT sample).
    Ack {
        /// When the first byte of the acknowledged chunk left the sender.
        chunk_sent_at: SimTime,
        /// Bytes acknowledged by this completion event.
        chunk_bytes: u32,
    },
    /// Congestion Notification Packet (DCQCN NP → RP).
    Cnp,
}

/// A packet in flight or queued.
///
/// Simulator luxury: metadata that real hardware would encode in headers
/// (timestamps, flow ids) is carried directly; only `size_bytes` affects
/// timing.
#[derive(Debug, Clone, Copy)]
pub struct Packet {
    /// Globally unique packet id (diagnostics).
    pub id: u64,
    /// The flow this packet belongs to.
    pub flow: FlowId,
    /// Origin host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Wire size in bytes (headers included).
    pub size_bytes: u32,
    /// Payload kind.
    pub kind: PacketKind,
    /// ECN Congestion-Experienced mark.
    pub ecn_marked: bool,
    /// When the packet entered the network at its source NIC.
    pub injected_at: SimTime,
}

impl Packet {
    /// True for CNP/ACK control packets (strict-priority, never marked).
    pub fn is_control(&self) -> bool {
        matches!(self.kind, PacketKind::Ack { .. } | PacketKind::Cnp)
    }

    /// Payload bytes carried (0 for control packets).
    pub fn payload_bytes(&self) -> u64 {
        match self.kind {
            PacketKind::Data { payload, .. } => payload as u64,
            _ => 0,
        }
    }
}

/// Index handle into a [`PacketArena`]; the currency the engine's event
/// queue and port queues trade in instead of 72-byte [`Packet`] values.
///
/// Handles are plain indices (no generation counter): the engine's packet
/// lifecycle is strictly linear — allocated at the sender NIC, moved through
/// port queues and `Deliver` events, freed exactly once at host consumption
/// or a fault drop — so a handle can never outlive its slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketHandle(u32);

/// Slab allocator for in-flight packets with free-list reuse.
///
/// The arena keeps every packet that is currently queued at a port or
/// riding a `Deliver` event in one contiguous `Vec`, so the steady-state
/// working set is bounded by the peak number of in-flight packets (a few
/// thousand even for 1024-sender incasts) and slots are recycled in LIFO
/// order — the hottest cache lines get reused first.
#[derive(Debug, Default)]
pub struct PacketArena {
    slots: Vec<Packet>,
    free: Vec<u32>,
    live: usize,
}

impl PacketArena {
    /// Create an empty arena.
    pub fn new() -> Self {
        PacketArena::default()
    }

    /// Store `pkt`, reusing a freed slot when one is available.
    pub fn alloc(&mut self, pkt: Packet) -> PacketHandle {
        self.live += 1;
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = pkt;
                PacketHandle(i)
            }
            None => {
                let i = self.slots.len() as u32;
                self.slots.push(pkt);
                PacketHandle(i)
            }
        }
    }

    /// Read access to a live packet.
    pub fn get(&self, h: PacketHandle) -> &Packet {
        &self.slots[h.0 as usize]
    }

    /// Write access to a live packet (ECN marking mutates in place).
    pub fn get_mut(&mut self, h: PacketHandle) -> &mut Packet {
        &mut self.slots[h.0 as usize]
    }

    /// Return a slot to the free list. The caller must not use `h` again.
    pub fn free(&mut self, h: PacketHandle) {
        debug_assert!(self.live > 0, "free on an empty arena");
        self.live -= 1;
        self.free.push(h.0);
    }

    /// Packets currently allocated.
    pub fn live(&self) -> usize {
        self.live
    }

    /// High-water mark of concurrently live packets (slab length).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_packet(payload: u32) -> Packet {
        Packet {
            id: 1,
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            size_bytes: payload + 40,
            kind: PacketKind::Data {
                offset: 0,
                payload,
                ack_request: false,
                last_of_flow: false,
                chunk_sent_at: SimTime::ZERO,
            },
            ecn_marked: false,
            injected_at: SimTime::ZERO,
        }
    }

    #[test]
    fn control_classification() {
        let d = data_packet(1000);
        assert!(!d.is_control());
        assert_eq!(d.payload_bytes(), 1000);

        let mut cnp = d;
        cnp.kind = PacketKind::Cnp;
        assert!(cnp.is_control());
        assert_eq!(cnp.payload_bytes(), 0);

        let mut ack = d;
        ack.kind = PacketKind::Ack {
            chunk_sent_at: SimTime::ZERO,
            chunk_bytes: 16_000,
        };
        assert!(ack.is_control());
    }

    #[test]
    fn arena_recycles_slots_lifo() {
        let mut arena = PacketArena::new();
        let a = arena.alloc(data_packet(100));
        let b = arena.alloc(data_packet(200));
        assert_eq!(arena.live(), 2);
        assert_eq!(arena.get(a).payload_bytes(), 100);
        arena.free(a);
        assert_eq!(arena.live(), 1);
        // The freed slot is reused before the slab grows.
        let c = arena.alloc(data_packet(300));
        assert_eq!(c, a);
        assert_eq!(arena.capacity(), 2);
        assert_eq!(arena.get(c).payload_bytes(), 300);
        assert_eq!(arena.get(b).payload_bytes(), 200);
    }

    #[test]
    fn arena_get_mut_marks_in_place() {
        let mut arena = PacketArena::new();
        let h = arena.alloc(data_packet(1000));
        assert!(!arena.get(h).ecn_marked);
        arena.get_mut(h).ecn_marked = true;
        assert!(arena.get(h).ecn_marked);
    }
}
