//! Deterministic per-link trace storage.
//!
//! A sorted-`Vec` map from [`LinkId`] to [`TimeSeries`]. Link ids are small
//! dense indices, so a sorted vector gives `O(log n)` lookup with fully
//! deterministic iteration order — unlike `HashMap`, whose iteration order
//! varies run to run and is banned from simulation logic by the simlint
//! `hash-collections` rule.

use crate::topology::LinkId;
use desim::stats::TimeSeries;

/// Map from link id to its recorded queue-occupancy trace, iterated in
/// ascending link order.
#[derive(Debug, Default, Clone)]
pub struct LinkTraceMap {
    entries: Vec<(LinkId, TimeSeries)>,
}

impl LinkTraceMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    fn position(&self, link: LinkId) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&link.0, |(l, _)| l.0)
    }

    /// Insert or replace the trace for `link`.
    pub fn insert(&mut self, link: LinkId, trace: TimeSeries) {
        match self.position(link) {
            Ok(i) => self.entries[i].1 = trace,
            Err(i) => self.entries.insert(i, (link, trace)),
        }
    }

    /// The trace for `link`, if traced.
    pub fn get(&self, link: LinkId) -> Option<&TimeSeries> {
        self.position(link).ok().map(|i| &self.entries[i].1)
    }

    /// Mutable trace for `link`, if traced.
    pub fn get_mut(&mut self, link: LinkId) -> Option<&mut TimeSeries> {
        match self.position(link) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    /// Is `link` traced?
    pub fn contains_key(&self, link: LinkId) -> bool {
        self.position(link).is_ok()
    }

    /// Traces in ascending link order.
    pub fn values(&self) -> impl Iterator<Item = &TimeSeries> {
        self.entries.iter().map(|(_, t)| t)
    }

    /// `(link, trace)` pairs in ascending link order.
    pub fn iter(&self) -> impl Iterator<Item = (LinkId, &TimeSeries)> {
        self.entries.iter().map(|(l, t)| (*l, t))
    }

    /// Number of traced links.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no links are traced.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl std::ops::Index<&LinkId> for LinkTraceMap {
    type Output = TimeSeries;
    fn index(&self, link: &LinkId) -> &TimeSeries {
        match self.get(*link) {
            Some(t) => t,
            None => panic!("link {} is not traced", link.0),
        }
    }
}

impl<'a> IntoIterator for &'a LinkTraceMap {
    type Item = (LinkId, &'a TimeSeries);
    type IntoIter = Box<dyn Iterator<Item = (LinkId, &'a TimeSeries)> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimTime;

    #[test]
    fn insert_get_sorted_iteration() {
        let mut m = LinkTraceMap::new();
        for l in [3usize, 1, 2, 0] {
            let mut t = TimeSeries::new(1e-6);
            t.record(SimTime::from_nanos(l as u64), l as f64);
            m.insert(LinkId(l), t);
        }
        assert_eq!(m.len(), 4);
        assert!(m.contains_key(LinkId(2)));
        assert!(!m.contains_key(LinkId(9)));
        let order: Vec<usize> = m.iter().map(|(l, _)| l.0).collect();
        assert_eq!(order, vec![0, 1, 2, 3], "iteration is ascending by link");
        assert_eq!(m[&LinkId(3)].points()[0].1, 3.0);
        assert!(m.get(LinkId(7)).is_none());
    }

    #[test]
    fn insert_replaces() {
        let mut m = LinkTraceMap::new();
        m.insert(LinkId(0), TimeSeries::new(1e-6));
        let mut t = TimeSeries::new(1e-3);
        t.record(SimTime::ZERO, 42.0);
        m.insert(LinkId(0), t);
        assert_eq!(m.len(), 1);
        assert_eq!(m[&LinkId(0)].points()[0].1, 42.0);
    }
}
