//! The deterministic event loop: hosts, switches, links, marking, tracing.
//!
//! The engine is a single struct owning all state (no shared-pointer
//! gymnastics), driven off one [`desim::EventQueue`]. The event vocabulary
//! is deliberately tiny:
//!
//! * `FlowStart` — a flow becomes active; its congestion control is started
//!   and its pacer armed;
//! * `Pacer` — a flow's rate limiter releases the next packet (or, under
//!   per-chunk pacing, the next burst) into the host NIC queue;
//! * `TxDone` — a port finished serializing a packet; it picks the next
//!   one (control queue first, strict priority);
//! * `Deliver` — a packet arrives at the far end of a link after
//!   serialization + propagation; switches forward it, hosts consume it;
//! * `CcTimer` — a congestion-control timer (DCQCN's α-timer and increase
//!   timer) fires.
//!
//! ECN marking happens either when a data packet **starts transmission**
//! (egress mode — the queue state at departure, §5.2) or when it is
//! **enqueued** (ingress mode, Figure 17). CNP generation implements the
//! NP's τ coalescing timer. Completion ACKs echo the chunk send timestamp
//! so the sender-side protocol computes RTT samples without global state.

use crate::cc::{CcEvent, CcUpdate};
use crate::config::{MarkingMode, PfcConfig, RedConfig};
use crate::flow::{FlowSpec, Pacing, ReceiverFlow, SenderFlow};
use crate::topology::{LinkId, NodeId, NodeKind, Topology};
use crate::trace::LinkTraceMap;
use crate::types::{FlowId, Packet, PacketKind};
use desim::stats::TimeSeries;
use desim::{EventQueue, SimDuration, SimRng, SimTime};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Payload bytes per full data packet.
    pub mtu_bytes: u32,
    /// Per-packet header overhead added to the wire size.
    pub header_bytes: u32,
    /// Wire size of control packets (ACK/CNP).
    pub control_packet_bytes: u32,
    /// RED/ECN profile applied at switch egress queues.
    pub red: RedConfig,
    /// Marking point (egress vs ingress).
    pub marking: MarkingMode,
    /// NP CNP coalescing interval τ (50 µs in the paper).
    pub cnp_interval: SimDuration,
    /// Optional PFC emulation (off by default; the paper ignores PFC).
    pub pfc: Option<PfcConfig>,
    /// Optional PI-controller AQM; when set, it replaces the RED curve as
    /// the source of the marking probability (queue pinned at `q_ref`).
    pub pi_aqm: Option<crate::config::PiAqmConfig>,
    /// RNG seed (drives probabilistic marking only).
    pub seed: u64,
    /// Queue-trace decimation (seconds); traces recorded for every switch
    /// egress queue.
    pub queue_trace_resolution: f64,
    /// Per-flow throughput trace window; `None` disables rate traces.
    pub rate_trace_window: Option<SimDuration>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            mtu_bytes: 1000,
            header_bytes: 48,
            control_packet_bytes: 64,
            red: RedConfig::dcqcn_default(),
            marking: MarkingMode::Egress,
            cnp_interval: SimDuration::from_micros(50),
            pfc: None,
            pi_aqm: None,
            seed: 1,
            queue_trace_resolution: 20e-6,
            rate_trace_window: Some(SimDuration::from_micros(100)),
        }
    }
}

#[derive(Debug)]
enum Ev {
    FlowStart(FlowId),
    Pacer(FlowId),
    TxDone(LinkId),
    Deliver(LinkId, Packet),
    CcTimer(FlowId, u8),
    /// Periodic PI-AQM controller update across all switch ports.
    AqmTick,
}

#[derive(Debug, Default)]
struct Port {
    data_q: std::collections::VecDeque<Packet>,
    data_bytes: u64,
    ctrl_q: std::collections::VecDeque<Packet>,
    busy: bool,
    paused: bool,
    /// PI-AQM controller state (marking probability, previous queue).
    pi_p: f64,
    pi_q_old: u64,
    /// Cumulative time this port spent PAUSEd (PFC statistics).
    paused_since: Option<SimTime>,
    paused_total: SimDuration,
    pauses: u64,
}

/// One completed flow.
#[derive(Debug, Clone)]
pub struct FctRecord {
    /// Flow index.
    pub flow: usize,
    /// Flow size in bytes.
    pub size_bytes: u64,
    /// Start time (seconds).
    pub start_s: f64,
    /// Completion time minus start time (seconds).
    pub fct_s: f64,
}

/// Results of a run.
#[derive(Debug)]
pub struct SimReport {
    /// Completed-flow records.
    pub fcts: Vec<FctRecord>,
    /// Queue-occupancy traces (bytes) per traced link, in ascending link
    /// order (deterministic iteration).
    pub queue_traces: LinkTraceMap,
    /// Per-flow delivered-throughput traces (bps), if enabled.
    pub rate_traces: Vec<Vec<(f64, f64)>>,
    /// Total payload bytes delivered per flow.
    pub delivered_bytes: Vec<u64>,
    /// Packets that were ECN-marked.
    pub marked_packets: u64,
    /// Total data packets delivered end-to-end.
    pub data_packets: u64,
    /// CNPs generated.
    pub cnps_sent: u64,
    /// When the first ECN mark was applied, if any (seconds) — distinguishes
    /// ingress from egress marking timing.
    pub first_mark_time_s: Option<f64>,
    /// Number of PFC PAUSE transitions observed across all ports.
    pub pfc_pauses: u64,
    /// Total port-seconds spent paused by PFC.
    pub pfc_paused_s: f64,
    /// Simulated time at the end of the run (seconds).
    pub end_time_s: f64,
}

/// The packet-level simulator.
pub struct Engine {
    topo: Topology,
    cfg: EngineConfig,
    events: EventQueue<Ev>,
    now: SimTime,
    rng: SimRng,
    ports: Vec<Port>,
    senders: Vec<SenderFlow>,
    receivers: Vec<ReceiverFlow>,
    /// Expected fire time per flow and timer kind (`timer_expect[flow][kind]`):
    /// re-arming replaces the slot, so stale heap events are ignored when
    /// they pop. Kinds are tiny dense protocol-defined codes, so a per-flow
    /// vector keeps the lookup allocation-free and deterministic.
    timer_expect: Vec<Vec<Option<SimTime>>>,
    queue_traces: LinkTraceMap,
    rate_window_bytes: Vec<u64>,
    rate_window_start: Vec<SimTime>,
    rate_traces: Vec<Vec<(f64, f64)>>,
    delivered_bytes: Vec<u64>,
    marked_packets: u64,
    data_packets: u64,
    cnps_sent: u64,
    next_packet_id: u64,
    first_mark_time: Option<SimTime>,
    fcts: Vec<FctRecord>,
}

impl Engine {
    /// Build an engine over a topology.
    pub fn new(topo: Topology, cfg: EngineConfig) -> Self {
        let ports = (0..topo.link_count()).map(|_| Port::default()).collect();
        let mut queue_traces = LinkTraceMap::new();
        for l in 0..topo.link_count() {
            let link = topo.link(LinkId(l));
            if matches!(topo.kind(link.src), NodeKind::Switch) {
                queue_traces.insert(LinkId(l), TimeSeries::new(cfg.queue_trace_resolution));
            }
        }
        let rng = SimRng::new(cfg.seed);
        Engine {
            topo,
            events: EventQueue::new(),
            now: SimTime::ZERO,
            rng,
            ports,
            senders: Vec::new(),
            receivers: Vec::new(),
            timer_expect: Vec::new(),
            queue_traces,
            rate_window_bytes: Vec::new(),
            rate_window_start: Vec::new(),
            rate_traces: Vec::new(),
            delivered_bytes: Vec::new(),
            marked_packets: 0,
            data_packets: 0,
            cnps_sent: 0,
            next_packet_id: 0,
            first_mark_time: None,
            fcts: Vec::new(),
            cfg,
        }
    }

    /// Register a flow; it will start at `spec.start`.
    pub fn add_flow(&mut self, spec: FlowSpec) -> FlowId {
        assert!(
            matches!(self.topo.kind(spec.src), NodeKind::Host)
                && matches!(self.topo.kind(spec.dst), NodeKind::Host),
            "flows connect hosts"
        );
        assert!(spec.src != spec.dst, "flow endpoints must differ");
        let id = FlowId(self.senders.len());
        let start = spec.start;
        self.senders.push(SenderFlow {
            id,
            src: spec.src,
            dst: spec.dst,
            size_bytes: spec.size_bytes,
            start,
            pacing: spec.pacing,
            cc: spec.cc,
            rate_bps: 0.0,
            next_offset: 0,
            sent_payload: 0,
            next_tx: start,
            chunk_remaining: 0,
            chunk_started: start,
            since_ack_request: 0,
            ack_chunk_bytes: spec.ack_chunk_bytes.max(1),
            completed: None,
        });
        self.receivers.push(ReceiverFlow::default());
        self.timer_expect.push(Vec::new());
        self.rate_window_bytes.push(0);
        self.rate_window_start.push(start);
        self.rate_traces.push(Vec::new());
        self.delivered_bytes.push(0);
        self.events.schedule(start, Ev::FlowStart(id));
        id
    }

    /// The line rate of a host's uplink.
    fn line_rate(&self, host: NodeId) -> f64 {
        let l = self.topo.out_links(host)[0]; // hosts have exactly one uplink
        self.topo.link(l).bandwidth_bps
    }

    /// Run until `end`; returns the report.
    pub fn run(&mut self, end: SimTime) -> SimReport {
        if let Some(pi) = &self.cfg.pi_aqm {
            let at = self.now + pi.update_interval;
            self.events.schedule(at, Ev::AqmTick);
        }
        while let Some(t) = self.events.peek_time() {
            if t > end {
                break;
            }
            let Some((t, ev)) = self.events.pop() else {
                break; // unreachable: peek_time just returned Some
            };
            self.now = t;
            self.handle(ev);
        }
        self.now = end;
        SimReport {
            fcts: std::mem::take(&mut self.fcts),
            queue_traces: std::mem::take(&mut self.queue_traces),
            rate_traces: std::mem::take(&mut self.rate_traces),
            delivered_bytes: std::mem::take(&mut self.delivered_bytes),
            marked_packets: self.marked_packets,
            data_packets: self.data_packets,
            cnps_sent: self.cnps_sent,
            first_mark_time_s: self.first_mark_time.map(SimTime::as_secs_f64),
            pfc_pauses: self.ports.iter().map(|p| p.pauses).sum(),
            pfc_paused_s: self
                .ports
                .iter()
                .map(|p| {
                    let mut d = p.paused_total;
                    if let Some(since) = p.paused_since {
                        d += end.saturating_since(since);
                    }
                    d.as_secs_f64()
                })
                .sum(),
            end_time_s: end.as_secs_f64(),
        }
    }

    fn handle(&mut self, ev: Ev) {
        let _span = obs::span::enter(obs::Phase::EventDispatch);
        match ev {
            Ev::FlowStart(f) => self.flow_start(f),
            Ev::Pacer(f) => self.pacer_fire(f),
            Ev::TxDone(l) => self.tx_done(l),
            Ev::Deliver(l, p) => self.deliver(l, p),
            Ev::CcTimer(f, kind) => self.cc_timer(f, kind),
            Ev::AqmTick => self.aqm_tick(),
        }
    }

    /// Discrete PI-AQM update (Hollot-style): for every switch egress queue,
    /// `p += a·(q − q_ref) − b·(q_old − q_ref)`, clamped to [0, 1].
    fn aqm_tick(&mut self) {
        let Some(pi) = self.cfg.pi_aqm.clone() else {
            return;
        };
        for l in 0..self.topo.link_count() {
            if !matches!(
                self.topo.kind(self.topo.link(LinkId(l)).src),
                NodeKind::Switch
            ) {
                continue;
            }
            let port = &mut self.ports[l];
            let e_now = port.data_bytes as f64 - pi.q_ref_bytes as f64;
            let e_old = port.pi_q_old as f64 - pi.q_ref_bytes as f64;
            port.pi_p = (port.pi_p + pi.a_per_byte * e_now - pi.b_per_byte * e_old).clamp(0.0, 1.0);
            port.pi_q_old = port.data_bytes;
        }
        let at = self.now + pi.update_interval;
        self.events.schedule(at, Ev::AqmTick);
    }

    fn flow_start(&mut self, f: FlowId) {
        let line = self.line_rate(self.senders[f.0].src);
        let now = self.now;
        let update = self.senders[f.0].cc.on_start(now, line);
        self.apply_update(f, update);
        if self.senders[f.0].rate_bps <= 0.0 {
            self.senders[f.0].rate_bps = line;
        }
        self.events.schedule(self.now, Ev::Pacer(f));
    }

    fn apply_update(&mut self, f: FlowId, update: CcUpdate) {
        if let Some(r) = update.new_rate_bps {
            desim::invariants::finite_rate("cc update rate", r);
            self.senders[f.0].rate_bps = r.max(1e3);
            obs::metrics::counter_inc("netsim.rate_updates");
            if obs::trace::enabled() {
                obs::trace::record(
                    self.now.as_secs_f64(),
                    obs::Event::RateUpdate {
                        flow: f.0 as u64,
                        rate_bps: self.senders[f.0].rate_bps,
                    },
                );
            }
        }
        for (kind, at) in update.timers {
            let at = at.max(self.now);
            let slots = &mut self.timer_expect[f.0];
            let k = kind as usize;
            if slots.len() <= k {
                slots.resize(k + 1, None);
            }
            slots[k] = Some(at);
            self.events.schedule(at, Ev::CcTimer(f, kind));
        }
    }

    fn cc_timer(&mut self, f: FlowId, kind: u8) {
        // A firing is valid only if it matches the most recent arming for
        // (flow, kind); re-arming replaced the expected time, so stale heap
        // entries fall through here.
        let k = kind as usize;
        if self.timer_expect[f.0].get(k).copied().flatten() != Some(self.now) {
            return;
        }
        self.timer_expect[f.0][k] = None;
        if self.senders[f.0].completed.is_some() {
            return;
        }
        let now = self.now;
        let update = self.senders[f.0].cc.on_event(now, CcEvent::Timer { kind });
        self.apply_update(f, update);
    }

    fn next_packet_id(&mut self) -> u64 {
        self.next_packet_id += 1;
        self.next_packet_id
    }

    /// Pacer: release the next packet (or chunk) of flow `f`.
    fn pacer_fire(&mut self, f: FlowId) {
        let (src, fully_sent, completed) = {
            let s = &self.senders[f.0];
            (s.src, s.fully_sent(), s.completed.is_some())
        };
        if fully_sent || completed {
            return;
        }
        let uplink = self
            .topo
            .next_hop(src, self.senders[f.0].dst)
            // simlint: allow(panic) — add_flow validated both endpoints are connected hosts
            .expect("route");

        match self.senders[f.0].pacing {
            Pacing::PerPacket => {
                let pkt = self.make_data_packet(f);
                let wire = pkt.size_bytes;
                self.enqueue(uplink, pkt);
                let s = &mut self.senders[f.0];
                let gap = SimDuration::serialization(wire as u64, s.rate_bps.max(1e3));
                s.next_tx = self.now + gap;
                let sent = s.next_offset.min(s.size_bytes.unwrap_or(u64::MAX));
                let _ = sent;
                if !s.fully_sent() {
                    let at = s.next_tx;
                    self.events.schedule(at, Ev::Pacer(f));
                }
                let payload = wire.saturating_sub(self.cfg.header_bytes) as u64;
                self.notify_sent(f, payload);
            }
            Pacing::PerChunk { seg_bytes } => {
                // Release a whole chunk back-to-back (the NIC queue
                // serializes it at line rate), then idle until the average
                // rate matches the target.
                let mut chunk_payload = 0u64;
                self.senders[f.0].chunk_started = self.now;
                let seg = seg_bytes.max(self.cfg.mtu_bytes) as u64;
                while chunk_payload < seg && !self.senders[f.0].fully_sent() {
                    let last_in_chunk = {
                        let s = &self.senders[f.0];
                        let next_payload = s.remaining().min(self.cfg.mtu_bytes as u64);
                        chunk_payload + next_payload >= seg || s.remaining() <= next_payload
                    };
                    let pkt = self.make_chunk_packet(f, last_in_chunk);
                    chunk_payload += pkt.payload_bytes();
                    self.enqueue(uplink, pkt);
                }
                self.notify_sent(f, chunk_payload);
                let s = &mut self.senders[f.0];
                if !s.fully_sent() {
                    let gap = SimDuration::serialization(
                        chunk_payload
                            + (chunk_payload / self.cfg.mtu_bytes as u64 + 1)
                                * self.cfg.header_bytes as u64,
                        s.rate_bps.max(1e3),
                    );
                    s.next_tx = self.now + gap;
                    let at = s.next_tx;
                    self.events.schedule(at, Ev::Pacer(f));
                }
            }
        }
    }

    fn notify_sent(&mut self, f: FlowId, payload: u64) {
        self.senders[f.0].sent_payload += payload;
        let now = self.now;
        let update = self.senders[f.0]
            .cc
            .on_event(now, CcEvent::SentBytes { bytes: payload });
        self.apply_update(f, update);
    }

    /// Build the next per-packet-pacing data packet for `f`, maintaining the
    /// ACK-request chunking state.
    fn make_data_packet(&mut self, f: FlowId) -> Packet {
        let id = self.next_packet_id();
        let s = &mut self.senders[f.0];
        let payload = s.remaining().min(self.cfg.mtu_bytes as u64) as u32;
        let offset = s.next_offset;
        s.next_offset += payload as u64;
        let last_of_flow = s.fully_sent();
        if s.since_ack_request == 0 {
            s.chunk_started = self.now;
        }
        s.since_ack_request += payload;
        let ack_request = s.since_ack_request >= s.ack_chunk_bytes || last_of_flow;
        if ack_request {
            s.since_ack_request = 0;
        }
        Packet {
            id,
            flow: f,
            src: s.src,
            dst: s.dst,
            size_bytes: payload + self.cfg.header_bytes,
            kind: PacketKind::Data {
                offset,
                payload,
                ack_request,
                last_of_flow,
                // Under per-packet pacing the RTT probe is the ack-requesting
                // packet itself: hardware timestamps the probe's departure, so
                // the sender's own pacing gaps do not pollute the sample.
                chunk_sent_at: self.now,
            },
            ecn_marked: false,
            injected_at: self.now,
        }
    }

    /// Build the next packet of a per-chunk burst.
    fn make_chunk_packet(&mut self, f: FlowId, last_in_chunk: bool) -> Packet {
        let id = self.next_packet_id();
        let s = &mut self.senders[f.0];
        let payload = s.remaining().min(self.cfg.mtu_bytes as u64) as u32;
        let offset = s.next_offset;
        s.next_offset += payload as u64;
        let last_of_flow = s.fully_sent();
        Packet {
            id,
            flow: f,
            src: s.src,
            dst: s.dst,
            size_bytes: payload + self.cfg.header_bytes,
            kind: PacketKind::Data {
                offset,
                payload,
                ack_request: last_in_chunk || last_of_flow,
                last_of_flow,
                chunk_sent_at: s.chunk_started,
            },
            ecn_marked: false,
            injected_at: self.now,
        }
    }

    /// Enqueue a packet on a link's egress queue; start transmission if the
    /// port is idle. Ingress marking happens here.
    fn enqueue(&mut self, link: LinkId, mut pkt: Packet) {
        let is_switch = matches!(self.topo.kind(self.topo.link(link).src), NodeKind::Switch);
        let port = &mut self.ports[link.0];
        if pkt.is_control() {
            port.ctrl_q.push_back(pkt);
        } else {
            port.data_bytes += pkt.size_bytes as u64;
            if is_switch && self.cfg.marking == MarkingMode::Ingress {
                let p = if self.cfg.pi_aqm.is_some() {
                    port.pi_p
                } else {
                    self.cfg.red.probability(port.data_bytes)
                };
                if p > 0.0 && self.rng.next_f64() < p {
                    pkt.ecn_marked = true;
                    self.marked_packets += 1;
                    self.first_mark_time.get_or_insert(self.now);
                    obs::metrics::counter_inc("netsim.ecn_marks");
                    if obs::trace::enabled() {
                        obs::trace::record(
                            self.now.as_secs_f64(),
                            obs::Event::EcnMark {
                                flow: pkt.flow.0 as u64,
                                link: link.0 as u64,
                                queue_bytes: port.data_bytes,
                            },
                        );
                    }
                }
            }
            port.data_q.push_back(pkt);
            if is_switch {
                let bytes = port.data_bytes as f64;
                desim::invariants::bounded_queue("switch egress queue", bytes, f64::INFINITY);
                if let Some(tr) = self.queue_traces.get_mut(link) {
                    tr.record(self.now, bytes);
                }
            }
        }
        self.try_transmit(link);
    }

    /// If the port is idle (and unpaused), start serializing the next packet.
    fn try_transmit(&mut self, link: LinkId) {
        let is_switch = matches!(self.topo.kind(self.topo.link(link).src), NodeKind::Switch);
        let (bw, prop) = {
            let l = self.topo.link(link);
            (l.bandwidth_bps, l.prop_delay)
        };
        let port = &mut self.ports[link.0];
        if port.busy {
            return;
        }
        // Strict priority: control queue first; PAUSE affects data only
        // (PFC pauses the lossless data class; control rides a separate
        // priority, as both protocols prioritize feedback).
        let mut pkt = if let Some(p) = port.ctrl_q.pop_front() {
            p
        } else if !port.paused {
            match port.data_q.pop_front() {
                Some(p) => p,
                None => return,
            }
        } else {
            return;
        };

        if !pkt.is_control() {
            // Egress marking: the mark reflects the queue at departure time.
            if is_switch && self.cfg.marking == MarkingMode::Egress {
                let p = if self.cfg.pi_aqm.is_some() {
                    port.pi_p
                } else {
                    self.cfg.red.probability(port.data_bytes)
                };
                if p > 0.0 && self.rng.next_f64() < p {
                    pkt.ecn_marked = true;
                    self.marked_packets += 1;
                    self.first_mark_time.get_or_insert(self.now);
                    obs::metrics::counter_inc("netsim.ecn_marks");
                    if obs::trace::enabled() {
                        obs::trace::record(
                            self.now.as_secs_f64(),
                            obs::Event::EcnMark {
                                flow: pkt.flow.0 as u64,
                                link: link.0 as u64,
                                queue_bytes: port.data_bytes,
                            },
                        );
                    }
                }
            }
            port.data_bytes -= pkt.size_bytes as u64;
            if is_switch {
                let bytes = port.data_bytes as f64;
                if let Some(tr) = self.queue_traces.get_mut(link) {
                    tr.record(self.now, bytes);
                }
            }
        }
        port.busy = true;
        let ser = SimDuration::serialization(pkt.size_bytes as u64, bw);
        self.events.schedule(self.now + ser, Ev::TxDone(link));
        self.events
            .schedule(self.now + ser + prop, Ev::Deliver(link, pkt));
        self.update_pfc(link);
    }

    fn tx_done(&mut self, link: LinkId) {
        self.ports[link.0].busy = false;
        self.try_transmit(link);
    }

    /// PFC emulation: when this port's data backlog exceeds the pause
    /// threshold, pause every link feeding this node; resume below the
    /// resume threshold. (Simplified node-granularity PFC; the paper's
    /// analysis assumes ECN acts first and ignores PFC entirely.)
    fn update_pfc(&mut self, link: LinkId) {
        let Some(pfc) = self.cfg.pfc.clone() else {
            return;
        };
        let node = self.topo.link(link).src;
        let backlog = self.ports[link.0].data_bytes;
        let pause = backlog > pfc.pause_threshold_bytes;
        let resume = backlog < pfc.resume_threshold_bytes;
        if !pause && !resume {
            return;
        }
        for l in 0..self.topo.link_count() {
            if self.topo.link(LinkId(l)).dst == node {
                if pause && !self.ports[l].paused {
                    self.ports[l].paused = true;
                    self.ports[l].paused_since = Some(self.now);
                    self.ports[l].pauses += 1;
                    obs::metrics::counter_inc("netsim.pfc_pauses");
                    if obs::trace::enabled() {
                        obs::trace::record(
                            self.now.as_secs_f64(),
                            obs::Event::PfcPause { link: l as u64 },
                        );
                    }
                } else if resume && self.ports[l].paused {
                    self.ports[l].paused = false;
                    if let Some(since) = self.ports[l].paused_since.take() {
                        let d = self.now.saturating_since(since);
                        self.ports[l].paused_total += d;
                    }
                    obs::metrics::counter_inc("netsim.pfc_resumes");
                    if obs::trace::enabled() {
                        obs::trace::record(
                            self.now.as_secs_f64(),
                            obs::Event::PfcResume { link: l as u64 },
                        );
                    }
                    self.try_transmit(LinkId(l));
                }
            }
        }
    }

    fn deliver(&mut self, link: LinkId, pkt: Packet) {
        let node = self.topo.link(link).dst;
        if matches!(self.topo.kind(node), NodeKind::Switch) || node != pkt.dst {
            // Forward toward the destination.
            let next = self
                .topo
                .next_hop(node, pkt.dst)
                // simlint: allow(panic) — topology is connected by construction
                .expect("routable destination");
            self.enqueue(next, pkt);
            return;
        }
        // Host consumption.
        match pkt.kind {
            PacketKind::Data {
                payload,
                ack_request,
                last_of_flow,
                chunk_sent_at,
                ..
            } => {
                self.data_packets += 1;
                let f = pkt.flow;
                self.delivered_bytes[f.0] += payload as u64;
                self.record_rate_sample(f, payload as u64);
                let recv = &mut self.receivers[f.0];
                recv.received += payload as u64;
                recv.last_byte_at = Some(self.now);

                // DCQCN NP behaviour: CNP on marked packet, coalesced to τ.
                if pkt.ecn_marked {
                    let due = match recv.last_cnp {
                        None => true,
                        Some(t) => self.now.saturating_since(t) >= self.cfg.cnp_interval,
                    };
                    if due {
                        recv.last_cnp = Some(self.now);
                        self.cnps_sent += 1;
                        obs::metrics::counter_inc("netsim.cnps_sent");
                        if obs::trace::enabled() {
                            obs::trace::record(
                                self.now.as_secs_f64(),
                                obs::Event::CnpSent { flow: f.0 as u64 },
                            );
                        }
                        let cnp = Packet {
                            id: 0,
                            flow: f,
                            src: pkt.dst,
                            dst: pkt.src,
                            size_bytes: self.cfg.control_packet_bytes,
                            kind: PacketKind::Cnp,
                            ecn_marked: false,
                            injected_at: self.now,
                        };
                        self.send_control(cnp);
                    }
                }
                if ack_request {
                    let ack = Packet {
                        id: 0,
                        flow: f,
                        src: pkt.dst,
                        dst: pkt.src,
                        size_bytes: self.cfg.control_packet_bytes,
                        kind: PacketKind::Ack {
                            chunk_sent_at,
                            chunk_bytes: self.senders[f.0].ack_chunk_bytes,
                        },
                        ecn_marked: false,
                        injected_at: self.now,
                    };
                    self.send_control(ack);
                }
                if last_of_flow {
                    let s = &mut self.senders[f.0];
                    if s.completed.is_none() {
                        s.completed = Some(self.now);
                        self.fcts.push(FctRecord {
                            flow: f.0,
                            size_bytes: s.size_bytes.unwrap_or(s.next_offset),
                            start_s: s.start.as_secs_f64(),
                            fct_s: self.now.saturating_since(s.start).as_secs_f64(),
                        });
                    }
                }
            }
            PacketKind::Ack { chunk_sent_at, .. } => {
                let f = pkt.flow;
                if self.senders[f.0].completed.is_some() {
                    return;
                }
                let rtt = self.now.saturating_since(chunk_sent_at);
                let now = self.now;
                let update = self.senders[f.0]
                    .cc
                    .on_event(now, CcEvent::RttSample { rtt });
                self.apply_update(f, update);
            }
            PacketKind::Cnp => {
                let f = pkt.flow;
                if self.senders[f.0].completed.is_some() {
                    return;
                }
                let now = self.now;
                let update = self.senders[f.0].cc.on_event(now, CcEvent::Cnp);
                self.apply_update(f, update);
            }
        }
    }

    /// Route a control packet from its source host toward its destination.
    fn send_control(&mut self, pkt: Packet) {
        let l = self
            .topo
            .next_hop(pkt.src, pkt.dst)
            // simlint: allow(panic) — control packets reverse a validated data route
            .expect("control route");
        self.enqueue(l, pkt);
    }

    fn record_rate_sample(&mut self, f: FlowId, bytes: u64) {
        let Some(window) = self.cfg.rate_trace_window else {
            return;
        };
        self.rate_window_bytes[f.0] += bytes;
        let start = self.rate_window_start[f.0];
        let elapsed = self.now.saturating_since(start);
        if elapsed >= window {
            let bps = self.rate_window_bytes[f.0] as f64 * 8.0 / elapsed.as_secs_f64();
            self.rate_traces[f.0].push((self.now.as_secs_f64(), bps));
            self.rate_window_bytes[f.0] = 0;
            self.rate_window_start[f.0] = self.now;
        }
    }

    /// Current simulated time (for tests).
    pub fn now(&self) -> SimTime {
        self.now
    }
}

impl Engine {
    /// Queue trace for a specific link (test helper).
    pub fn queue_trace(&self, link: LinkId) -> Option<&TimeSeries> {
        self.queue_traces.get(link)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::FixedRate;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    fn flow(src: NodeId, dst: NodeId, size: u64, rate: f64) -> FlowSpec {
        FlowSpec {
            src,
            dst,
            size_bytes: Some(size),
            start: SimTime::ZERO,
            pacing: Pacing::PerPacket,
            cc: Box::new(FixedRate { rate_bps: rate }),
            ack_chunk_bytes: 16_000,
        }
    }

    #[test]
    fn single_flow_delivers_all_bytes() {
        let (topo, senders, receiver) = Topology::single_switch(1, 10e9, us(1));
        let mut eng = Engine::new(topo, EngineConfig::default());
        eng.add_flow(flow(senders[0], receiver, 100_000, 5e9));
        let report = eng.run(SimTime::from_millis(10));
        assert_eq!(report.delivered_bytes[0], 100_000);
        assert_eq!(report.fcts.len(), 1);
        assert_eq!(report.fcts[0].size_bytes, 100_000);
    }

    #[test]
    fn sub_mtu_flow_completes() {
        // A 1-byte flow: one packet, one completion, exact byte accounting.
        let (topo, senders, receiver) = Topology::single_switch(1, 10e9, us(1));
        let mut eng = Engine::new(topo, EngineConfig::default());
        eng.add_flow(flow(senders[0], receiver, 1, 1e9));
        let report = eng.run(SimTime::from_millis(1));
        assert_eq!(report.delivered_bytes[0], 1);
        assert_eq!(report.fcts.len(), 1);
        assert_eq!(report.data_packets, 1);
    }

    #[test]
    fn exact_mtu_multiple_flow_completes() {
        let (topo, senders, receiver) = Topology::single_switch(1, 10e9, us(1));
        let mut eng = Engine::new(topo, EngineConfig::default());
        eng.add_flow(flow(senders[0], receiver, 3_000, 1e9)); // 3 packets
        let report = eng.run(SimTime::from_millis(1));
        assert_eq!(report.delivered_bytes[0], 3_000);
        assert_eq!(report.data_packets, 3);
    }

    #[test]
    fn delayed_start_flow() {
        let (topo, senders, receiver) = Topology::single_switch(1, 10e9, us(1));
        let mut eng = Engine::new(topo, EngineConfig::default());
        let mut spec = flow(senders[0], receiver, 10_000, 5e9);
        spec.start = SimTime::from_millis(5);
        eng.add_flow(spec);
        let report = eng.run(SimTime::from_millis(10));
        assert_eq!(report.fcts.len(), 1);
        assert!(
            report.fcts[0].start_s >= 0.005,
            "start respected: {}",
            report.fcts[0].start_s
        );
    }

    #[test]
    fn fct_close_to_ideal_for_uncongested_flow() {
        let (topo, senders, receiver) = Topology::single_switch(1, 10e9, us(1));
        let mut eng = Engine::new(topo, EngineConfig::default());
        // 1 MB at 10 Gbps ≈ 800 µs + small store-and-forward and prop.
        eng.add_flow(flow(senders[0], receiver, 1_000_000, 10e9));
        let report = eng.run(SimTime::from_millis(50));
        let fct = report.fcts[0].fct_s;
        let ideal = 1_000_000.0 * 8.0 / 10e9;
        assert!(fct >= ideal, "fct {fct} can't beat serialization {ideal}");
        assert!(fct < ideal * 1.2 + 20e-6, "fct {fct} too slow vs {ideal}");
    }

    #[test]
    fn two_flows_share_bottleneck_queue_grows() {
        // Two fixed 8 Gbps flows into a 10 Gbps bottleneck must build queue
        // and eventually mark packets.
        let (topo, senders, receiver) = Topology::single_switch(2, 10e9, us(1));
        let mut eng = Engine::new(topo, EngineConfig::default());
        eng.add_flow(flow(senders[0], receiver, 2_000_000, 8e9));
        eng.add_flow(flow(senders[1], receiver, 2_000_000, 8e9));
        let report = eng.run(SimTime::from_millis(20));
        assert_eq!(report.delivered_bytes[0], 2_000_000);
        assert_eq!(report.delivered_bytes[1], 2_000_000);
        assert!(report.marked_packets > 0, "overload must trigger ECN marks");
        assert!(report.cnps_sent > 0, "marked packets must produce CNPs");
        // Queue trace for the switch→receiver link must show growth.
        let (trace_max, _) = report
            .queue_traces
            .values()
            .map(|tr| {
                let max = tr.points().iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
                (max, tr.len())
            })
            .fold((0.0f64, 0usize), |acc, x| (acc.0.max(x.0), acc.1 + x.1));
        assert!(trace_max > 10_000.0, "bottleneck queue should exceed 10 KB");
    }

    #[test]
    fn conservation_no_loss() {
        // Without PFC or caps the simulator is lossless: every payload byte
        // sent is delivered.
        let (topo, senders, receiver) = Topology::single_switch(4, 10e9, us(2));
        let mut eng = Engine::new(topo, EngineConfig::default());
        for &s in senders.iter().take(4) {
            eng.add_flow(flow(s, receiver, 500_000, 9e9));
        }
        let report = eng.run(SimTime::from_millis(50));
        for i in 0..4 {
            assert_eq!(report.delivered_bytes[i], 500_000, "flow {i} lost bytes");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let (topo, senders, receiver) = Topology::single_switch(3, 10e9, us(1));
            let mut eng = Engine::new(topo, EngineConfig::default());
            for &s in senders.iter().take(3) {
                eng.add_flow(flow(s, receiver, 300_000, 7e9));
            }
            let r = eng.run(SimTime::from_millis(20));
            (
                r.marked_packets,
                r.cnps_sent,
                r.fcts.iter().map(|f| f.fct_s.to_bits()).collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn chunk_pacing_produces_completion_acks_and_rtt() {
        // Per-chunk pacing with a CC that counts RTT samples.
        #[derive(Debug)]
        struct RttCounter {
            samples: std::rc::Rc<std::cell::Cell<u64>>,
        }
        impl crate::cc::CongestionControl for RttCounter {
            fn on_start(&mut self, _now: SimTime, line: f64) -> CcUpdate {
                CcUpdate::rate(line / 2.0)
            }
            fn on_event(&mut self, _now: SimTime, ev: CcEvent) -> CcUpdate {
                if matches!(ev, CcEvent::RttSample { .. }) {
                    self.samples.set(self.samples.get() + 1);
                }
                CcUpdate::none()
            }
            fn current_rate_bps(&self) -> f64 {
                5e9
            }
        }
        let samples = std::rc::Rc::new(std::cell::Cell::new(0));
        let (topo, senders, receiver) = Topology::single_switch(1, 10e9, us(1));
        let mut eng = Engine::new(topo, EngineConfig::default());
        eng.add_flow(FlowSpec {
            src: senders[0],
            dst: receiver,
            size_bytes: Some(160_000),
            start: SimTime::ZERO,
            pacing: Pacing::PerChunk { seg_bytes: 16_000 },
            cc: Box::new(RttCounter {
                samples: samples.clone(),
            }),
            ack_chunk_bytes: 16_000,
        });
        let report = eng.run(SimTime::from_millis(10));
        assert_eq!(report.delivered_bytes[0], 160_000);
        // 160 KB / 16 KB chunks = 10 completion events; the final chunk's
        // ACK races flow completion (the engine drops samples for completed
        // flows), so 9 are guaranteed to reach the CC.
        assert!(
            samples.get() >= 9,
            "one RTT sample per chunk, got {}",
            samples.get()
        );
    }

    #[test]
    fn control_packets_prioritized() {
        // With a deep data backlog, a CNP still crosses quickly: flood the
        // switch→receiver port and check CNP round trip stays near the
        // propagation+serialization floor. Indirect check: CNPs are sent
        // and flows react before the queue drains.
        let (topo, senders, receiver) = Topology::single_switch(2, 10e9, us(1));
        let cfg = EngineConfig::default();
        let mut eng = Engine::new(topo, cfg);
        eng.add_flow(flow(senders[0], receiver, 3_000_000, 9e9));
        eng.add_flow(flow(senders[1], receiver, 3_000_000, 9e9));
        let report = eng.run(SimTime::from_millis(30));
        assert!(report.cnps_sent > 5);
    }

    #[test]
    fn ingress_vs_egress_marking_differ() {
        let run = |mode: MarkingMode| {
            let (topo, senders, receiver) = Topology::single_switch(2, 10e9, us(1));
            let mut cfg = EngineConfig::default();
            cfg.marking = mode;
            cfg.seed = 42;
            let mut eng = Engine::new(topo, cfg);
            eng.add_flow(flow(senders[0], receiver, 1_000_000, 8e9));
            eng.add_flow(flow(senders[1], receiver, 1_000_000, 8e9));
            let r = eng.run(SimTime::from_millis(20));
            (r.marked_packets, r.first_mark_time_s)
        };
        let (egress, egress_first) = run(MarkingMode::Egress);
        let (ingress, ingress_first) = run(MarkingMode::Ingress);
        assert!(egress > 0 && ingress > 0);
        // Same seed, different decision points: ingress decides when the
        // packet joins the queue, egress when it departs — the first mark
        // cannot land at the same instant.
        assert_ne!(egress_first, ingress_first);
    }

    #[test]
    fn pi_aqm_pins_queue_with_fixed_overload() {
        // Two fixed flows overloading the port: RED would let the queue sit
        // wherever the rates put it; PI marks harder until the queue is at
        // q_ref. Fixed-rate senders ignore marks, so here we only check the
        // controller state itself rises to full marking.
        let (topo, senders, receiver) = Topology::single_switch(2, 10e9, us(1));
        let mut cfg = EngineConfig::default();
        cfg.pi_aqm = Some(crate::config::PiAqmConfig::default_for(100_000));
        let mut eng = Engine::new(topo, cfg);
        eng.add_flow(flow(senders[0], receiver, 2_000_000, 8e9));
        eng.add_flow(flow(senders[1], receiver, 2_000_000, 8e9));
        let report = eng.run(SimTime::from_millis(20));
        // Persistent overload beyond q_ref → controller saturates → marks.
        assert!(report.marked_packets > 100, "PI must mark under overload");
    }

    #[test]
    fn pfc_statistics_recorded() {
        let (topo, senders, receiver) = Topology::single_switch(2, 10e9, us(1));
        let mut cfg = EngineConfig::default();
        cfg.pfc = Some(PfcConfig {
            pause_threshold_bytes: 30_000,
            resume_threshold_bytes: 20_000,
        });
        let mut eng = Engine::new(topo, cfg);
        eng.add_flow(flow(senders[0], receiver, 1_000_000, 9e9));
        eng.add_flow(flow(senders[1], receiver, 1_000_000, 9e9));
        let report = eng.run(SimTime::from_millis(20));
        assert!(report.pfc_pauses > 0, "overload must trigger PAUSE");
        assert!(report.pfc_paused_s > 0.0);
        assert!(report.pfc_paused_s < 0.02 * 6.0, "bounded by port-seconds");
    }

    #[test]
    fn no_pfc_no_pause_stats() {
        let (topo, senders, receiver) = Topology::single_switch(2, 10e9, us(1));
        let mut eng = Engine::new(topo, EngineConfig::default());
        eng.add_flow(flow(senders[0], receiver, 500_000, 9e9));
        eng.add_flow(flow(senders[1], receiver, 500_000, 9e9));
        let report = eng.run(SimTime::from_millis(10));
        assert_eq!(report.pfc_pauses, 0);
        assert_eq!(report.pfc_paused_s, 0.0);
    }

    #[test]
    fn pfc_pauses_upstream() {
        let (topo, senders, receiver) = Topology::single_switch(2, 10e9, us(1));
        let mut cfg = EngineConfig::default();
        cfg.pfc = Some(PfcConfig {
            pause_threshold_bytes: 30_000,
            resume_threshold_bytes: 20_000,
        });
        let mut eng = Engine::new(topo, cfg);
        eng.add_flow(flow(senders[0], receiver, 1_000_000, 9e9));
        eng.add_flow(flow(senders[1], receiver, 1_000_000, 9e9));
        let report = eng.run(SimTime::from_millis(20));
        // Lossless even with PFC bounds; everything still delivered.
        assert_eq!(report.delivered_bytes[0], 1_000_000);
        assert_eq!(report.delivered_bytes[1], 1_000_000);
        // The bottleneck queue stays near the pause threshold.
        let max_q = report
            .queue_traces
            .values()
            .flat_map(|tr| tr.points().iter().map(|&(_, v)| v))
            .fold(0.0f64, f64::max);
        assert!(max_q < 120_000.0, "PFC should bound the queue, saw {max_q}");
    }
}
