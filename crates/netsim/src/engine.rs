//! The deterministic event loop: hosts, switches, links, marking, tracing.
//!
//! The engine is a single struct owning all state (no shared-pointer
//! gymnastics), driven off one [`desim::EventQueue`]. The event vocabulary
//! is deliberately tiny:
//!
//! * `FlowStart` — a flow becomes active; its congestion control is started
//!   and its pacer armed;
//! * `Pacer` — a flow's rate limiter releases the next packet (or, under
//!   per-chunk pacing, the next burst) into the host NIC queue;
//! * `TxDone` — a port finished serializing a packet; it picks the next
//!   one (control queue first, strict priority);
//! * `Deliver` — a packet arrives at the far end of a link after
//!   serialization + propagation; switches forward it, hosts consume it;
//! * `CcTimer` — a congestion-control timer (DCQCN's α-timer and increase
//!   timer) fires.
//!
//! ECN marking happens either when a data packet **starts transmission**
//! (egress mode — the queue state at departure, §5.2) or when it is
//! **enqueued** (ingress mode, Figure 17). CNP generation implements the
//! NP's τ coalescing timer. Completion ACKs echo the chunk send timestamp
//! so the sender-side protocol computes RTT samples without global state.

use crate::cc::{CcEvent, CcUpdate};
use crate::config::{MarkingMode, PfcConfig, RedConfig};
use crate::flow::{FlowSpec, Pacing, ReceiverFlows, SenderFlows};
use crate::topology::{LinkId, NodeId, NodeKind, Topology};
use crate::trace::LinkTraceMap;
use crate::types::{FlowId, Packet, PacketArena, PacketHandle, PacketKind};
use desim::stats::TimeSeries;
use desim::{EventId, EventQueue, SimDuration, SimRng, SimTime};
use faults::{FaultKind, FaultSchedule, ParamTarget, SimError};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Payload bytes per full data packet.
    pub mtu_bytes: u32,
    /// Per-packet header overhead added to the wire size.
    pub header_bytes: u32,
    /// Wire size of control packets (ACK/CNP).
    pub control_packet_bytes: u32,
    /// RED/ECN profile applied at switch egress queues.
    pub red: RedConfig,
    /// Marking point (egress vs ingress).
    pub marking: MarkingMode,
    /// NP CNP coalescing interval τ (50 µs in the paper).
    pub cnp_interval: SimDuration,
    /// Optional PFC emulation (off by default; the paper ignores PFC).
    pub pfc: Option<PfcConfig>,
    /// Optional PI-controller AQM; when set, it replaces the RED curve as
    /// the source of the marking probability (queue pinned at `q_ref`).
    pub pi_aqm: Option<crate::config::PiAqmConfig>,
    /// RNG seed (drives probabilistic marking only).
    pub seed: u64,
    /// Queue-trace decimation (seconds); traces recorded for every switch
    /// egress queue.
    pub queue_trace_resolution_s: f64,
    /// Per-flow throughput trace window; `None` disables rate traces.
    pub rate_trace_window: Option<SimDuration>,
    /// Optional fault-injection schedule, compiled onto the event queue at
    /// the start of the run. `None` (and an empty schedule) leave the run
    /// bit-identical to a fault-free engine — the fault plane draws from
    /// its own per-link RNG sub-streams, never from the marking RNG.
    pub faults: Option<FaultSchedule>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            mtu_bytes: 1000,
            header_bytes: 48,
            control_packet_bytes: 64,
            red: RedConfig::dcqcn_default(),
            marking: MarkingMode::Egress,
            cnp_interval: SimDuration::from_micros(50),
            pfc: None,
            pi_aqm: None,
            seed: 1,
            queue_trace_resolution_s: 20e-6,
            rate_trace_window: Some(SimDuration::from_micros(100)),
            faults: None,
        }
    }
}

impl EngineConfig {
    /// Validate field ranges, returning a descriptive [`SimError`] naming
    /// the offending field. [`Engine::try_run`] calls this before the event
    /// loop starts, so a bad config is a structured error instead of a
    /// downstream panic or silent NaN. The fault schedule is validated
    /// separately against the topology's link count at install time.
    pub fn validate(&self) -> Result<(), SimError> {
        let bad = |detail: String| Err(SimError::config("EngineConfig", detail));
        if self.mtu_bytes == 0 {
            return bad("mtu_bytes must be positive".to_string());
        }
        if self.control_packet_bytes == 0 {
            return bad("control_packet_bytes must be positive".to_string());
        }
        if self.red.kmin_bytes > self.red.kmax_bytes {
            return bad(format!(
                "red.kmin_bytes {} exceeds red.kmax_bytes {}",
                self.red.kmin_bytes, self.red.kmax_bytes
            ));
        }
        if !(self.red.p_max.is_finite() && (0.0..=1.0).contains(&self.red.p_max)) {
            return bad(format!("red.p_max {} outside [0, 1]", self.red.p_max));
        }
        if !(self.queue_trace_resolution_s.is_finite() && self.queue_trace_resolution_s > 0.0) {
            return bad(format!(
                "queue_trace_resolution_s {} must be positive and finite (a zero or negative \
                 trace interval is meaningless)",
                self.queue_trace_resolution_s
            ));
        }
        if let Some(pfc) = &self.pfc {
            if pfc.resume_threshold_bytes > pfc.pause_threshold_bytes {
                return bad(format!(
                    "pfc.resume_threshold_bytes {} exceeds pfc.pause_threshold_bytes {} \
                     (the port would pause and resume simultaneously)",
                    pfc.resume_threshold_bytes, pfc.pause_threshold_bytes
                ));
            }
        }
        if let Some(pi) = &self.pi_aqm {
            if !(pi.a_per_byte.is_finite() && pi.b_per_byte.is_finite()) {
                return bad(format!(
                    "pi_aqm coefficients must be finite (a {}, b {})",
                    pi.a_per_byte, pi.b_per_byte
                ));
            }
            if pi.update_interval == SimDuration::ZERO {
                return bad("pi_aqm.update_interval must be positive".to_string());
            }
        }
        Ok(())
    }
}

#[derive(Debug)]
enum Ev {
    FlowStart(FlowId),
    Pacer(FlowId),
    TxDone(LinkId),
    /// A packet (by arena handle) arrives at the far end of a link. Events
    /// carry 4-byte handles, not ~72-byte [`Packet`] values: the event
    /// queue's payload arena stays dense and packets are never memcpy'd
    /// between hops.
    Deliver(LinkId, PacketHandle),
    CcTimer(FlowId, u8),
    /// Periodic PI-AQM controller update across all switch ports.
    AqmTick,
    /// A compiled fault-plane operation (index into `Engine::fault_ops`).
    Fault(usize),
    /// End of one pause-storm forced-pause interval on a link.
    FaultStormRelease(LinkId),
}

/// A windowed fault effect active on a link. Loss probabilities across
/// overlapping windows combine as `1 − Π(1 − pᵢ)`; delays add.
#[derive(Debug, Clone, Copy, PartialEq)]
enum WindowEffect {
    /// Bernoulli drop probability for data packets.
    DataLoss(f64),
    /// Bernoulli drop probability for CNPs.
    CnpLoss(f64),
    /// Mean of an exponential per-packet extra delivery delay (seconds).
    Jitter(f64),
    /// Constant extra delivery delay (seconds).
    ExtraDelay(f64),
}

impl WindowEffect {
    fn label(&self) -> &'static str {
        match self {
            WindowEffect::DataLoss(_) => "data_loss",
            WindowEffect::CnpLoss(_) => "cnp_loss",
            WindowEffect::Jitter(_) => "jitter",
            WindowEffect::ExtraDelay(_) => "delay_spike",
        }
    }
}

/// A fault-schedule entry compiled into an engine-executable operation.
#[derive(Debug, Clone, Copy)]
enum FaultOp {
    LinkDown {
        link: usize,
    },
    LinkUp {
        link: usize,
    },
    WindowStart {
        link: usize,
        window: u32,
        effect: WindowEffect,
    },
    WindowEnd {
        link: usize,
        window: u32,
    },
    /// One storm tick: force a pause of `pause`, then re-schedule itself
    /// every `period` until `until`.
    StormTick {
        link: usize,
        period: SimDuration,
        pause: SimDuration,
        until: SimTime,
    },
    Perturb {
        target: ParamTarget,
        scale: f64,
    },
}

/// Per-link fault state (allocated only when a non-empty schedule is
/// installed; the fault-free hot path checks a single `faults_active` bool).
#[derive(Debug)]
struct LinkFaultState {
    /// False while a link-flap outage is in effect.
    up: bool,
    /// True while a pause storm holds the link's data class paused.
    storm_paused: bool,
    storm_since: Option<SimTime>,
    storm_total: SimDuration,
    /// The `(schedule seed, link id)`-keyed RNG sub-stream: loss coin flips
    /// and jitter samples never touch the engine's marking RNG.
    rng: SimRng,
    /// Active windowed effects as `(window id, effect)`.
    windows: Vec<(u32, WindowEffect)>,
}

impl LinkFaultState {
    fn new(rng: SimRng) -> Self {
        LinkFaultState {
            up: true,
            storm_paused: false,
            storm_since: None,
            storm_total: SimDuration::ZERO,
            rng,
            windows: Vec::new(),
        }
    }
}

/// Per-link egress-port state, one column per field. The transmit hot path
/// (`enqueue`/`try_transmit`/`tx_done`) touches `data_q`/`data_bytes`/`busy`
/// for almost every packet but the PFC and PI-AQM columns only on their
/// (much rarer) respective events, so the columnar split keeps the per-packet
/// working set to three dense arrays. Queues hold [`PacketHandle`]s; packet
/// bodies live in the engine's [`PacketArena`].
#[derive(Debug, Default)]
struct Ports {
    data_q: Vec<std::collections::VecDeque<PacketHandle>>,
    data_bytes: Vec<u64>,
    ctrl_q: Vec<std::collections::VecDeque<PacketHandle>>,
    busy: Vec<bool>,
    paused: Vec<bool>,
    /// PI-AQM controller state (marking probability, previous queue).
    pi_p: Vec<f64>,
    pi_q_old: Vec<u64>,
    /// Cumulative time each port spent PAUSEd (PFC statistics).
    paused_since: Vec<Option<SimTime>>,
    paused_total: Vec<SimDuration>,
    pauses: Vec<u64>,
}

impl Ports {
    fn new(n: usize) -> Self {
        Ports {
            data_q: (0..n).map(|_| std::collections::VecDeque::new()).collect(),
            data_bytes: vec![0; n],
            ctrl_q: (0..n).map(|_| std::collections::VecDeque::new()).collect(),
            busy: vec![false; n],
            paused: vec![false; n],
            pi_p: vec![0.0; n],
            pi_q_old: vec![0; n],
            paused_since: vec![None; n],
            paused_total: vec![SimDuration::ZERO; n],
            pauses: vec![0; n],
        }
    }
}

/// One completed flow.
#[derive(Debug, Clone)]
pub struct FctRecord {
    /// Flow index.
    pub flow: usize,
    /// Flow size in bytes.
    pub size_bytes: u64,
    /// Start time (seconds).
    pub start_s: f64,
    /// Completion time minus start time (seconds).
    pub fct_s: f64,
}

/// Results of a run.
#[derive(Debug)]
pub struct SimReport {
    /// Completed-flow records.
    pub fcts: Vec<FctRecord>,
    /// Queue-occupancy traces (bytes) per traced link, in ascending link
    /// order (deterministic iteration).
    pub queue_traces: LinkTraceMap,
    /// Per-flow delivered-throughput traces (bps), if enabled.
    pub rate_traces: Vec<Vec<(f64, f64)>>,
    /// Total payload bytes delivered per flow.
    pub delivered_bytes: Vec<u64>,
    /// Packets that were ECN-marked.
    pub marked_packets: u64,
    /// Total data packets delivered end-to-end.
    pub data_packets: u64,
    /// CNPs generated.
    pub cnps_sent: u64,
    /// When the first ECN mark was applied, if any (seconds) — distinguishes
    /// ingress from egress marking timing.
    pub first_mark_time_s: Option<f64>,
    /// Number of PFC PAUSE transitions observed across all ports.
    pub pfc_pauses: u64,
    /// Total port-seconds spent paused by PFC.
    pub pfc_paused_s: f64,
    /// Packets dropped by fault-plane loss windows.
    pub fault_drops: u64,
    /// Forced-pause intervals injected by fault-plane pause storms.
    pub fault_pauses: u64,
    /// Total link-seconds spent paused by fault-plane pause storms.
    pub fault_paused_s: f64,
    /// Fault-plane operations executed (flap edges, window starts/ends,
    /// storm ticks, perturbations). Zero on a fault-free run.
    pub faults_injected: u64,
    /// Events dispatched by the run's event loop — the numerator of the
    /// `events/sec` throughput metric the scaling benchmarks report.
    pub events_processed: u64,
    /// Simulated time at the end of the run (seconds).
    pub end_time_s: f64,
}

/// The packet-level simulator.
pub struct Engine {
    topo: Topology,
    cfg: EngineConfig,
    events: EventQueue<Ev>,
    now: SimTime,
    rng: SimRng,
    ports: Ports,
    senders: SenderFlows,
    receivers: ReceiverFlows,
    /// In-flight packet storage; port queues and `Deliver` events reference
    /// packets by [`PacketHandle`].
    packets: PacketArena,
    /// Live event-queue id per flow and timer kind
    /// (`timer_ids[flow][kind]`): re-arming cancels the previous event in
    /// O(1) on the timing wheel, so stale firings never reach the dispatch
    /// loop at all. Kinds are tiny dense protocol-defined codes, so a
    /// per-flow vector keeps the lookup allocation-free and deterministic.
    timer_ids: Vec<Vec<Option<EventId>>>,
    queue_traces: LinkTraceMap,
    rate_window_bytes: Vec<u64>,
    rate_window_start: Vec<SimTime>,
    rate_traces: Vec<Vec<(f64, f64)>>,
    delivered_bytes: Vec<u64>,
    marked_packets: u64,
    data_packets: u64,
    cnps_sent: u64,
    next_packet_id: u64,
    first_mark_time: Option<SimTime>,
    fcts: Vec<FctRecord>,
    /// True once a non-empty fault schedule is installed; every fault check
    /// on the hot path is gated behind this single well-predicted branch,
    /// so the fault-free run pays (approximately) nothing.
    faults_active: bool,
    faults_installed: bool,
    link_faults: Vec<LinkFaultState>,
    fault_ops: Vec<FaultOp>,
    fault_drops: u64,
    fault_pauses: u64,
    faults_injected: u64,
    events_processed: u64,
}

impl Engine {
    /// Build an engine over a topology.
    pub fn new(topo: Topology, cfg: EngineConfig) -> Self {
        let ports = Ports::new(topo.link_count());
        let mut queue_traces = LinkTraceMap::new();
        for l in 0..topo.link_count() {
            let link = topo.link(LinkId(l));
            if matches!(topo.kind(link.src), NodeKind::Switch) {
                queue_traces.insert(LinkId(l), TimeSeries::new(cfg.queue_trace_resolution_s));
            }
        }
        let rng = SimRng::new(cfg.seed);
        Engine {
            topo,
            events: EventQueue::new(),
            now: SimTime::ZERO,
            rng,
            ports,
            senders: SenderFlows::default(),
            receivers: ReceiverFlows::default(),
            packets: PacketArena::new(),
            timer_ids: Vec::new(),
            queue_traces,
            rate_window_bytes: Vec::new(),
            rate_window_start: Vec::new(),
            rate_traces: Vec::new(),
            delivered_bytes: Vec::new(),
            marked_packets: 0,
            data_packets: 0,
            cnps_sent: 0,
            next_packet_id: 0,
            first_mark_time: None,
            fcts: Vec::new(),
            faults_active: false,
            faults_installed: false,
            link_faults: Vec::new(),
            fault_ops: Vec::new(),
            fault_drops: 0,
            fault_pauses: 0,
            faults_injected: 0,
            events_processed: 0,
            cfg,
        }
    }

    /// Register a flow; it will start at `spec.start`. Panics on an invalid
    /// spec; [`Engine::try_add_flow`] is the non-panicking equivalent.
    pub fn add_flow(&mut self, spec: FlowSpec) -> FlowId {
        self.try_add_flow(spec).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Register a flow, returning a descriptive [`SimError`] if the
    /// endpoints are not distinct, routable hosts.
    pub fn try_add_flow(&mut self, spec: FlowSpec) -> Result<FlowId, SimError> {
        let is_host = |n: NodeId| matches!(self.topo.kind(n), NodeKind::Host);
        if !is_host(spec.src) || !is_host(spec.dst) {
            return Err(SimError::flow(
                "Engine::add_flow",
                format!(
                    "flows connect hosts, got node {} -> node {}",
                    spec.src.0, spec.dst.0
                ),
            ));
        }
        if spec.src == spec.dst {
            return Err(SimError::flow(
                "Engine::add_flow",
                "flow endpoints must differ",
            ));
        }
        // Both directions must be routable (data forward, ACK/CNP reverse);
        // Topology construction guarantees this for host pairs, so these
        // only fire for a topology built by hand around the validation.
        if self.topo.next_hop(spec.src, spec.dst).is_none()
            || self.topo.next_hop(spec.dst, spec.src).is_none()
        {
            return Err(SimError::flow(
                "Engine::add_flow",
                format!("no route between hosts {} and {}", spec.src.0, spec.dst.0),
            ));
        }
        let start = spec.start;
        // Deterministic per-flow ECMP hash: a one-shot xoshiro draw keyed on
        // the engine seed, the flow index, and the endpoints. Multipath
        // topologies hash this into their equal-cost next-hop sets; the
        // choice is fixed at registration, so routing never consumes runtime
        // randomness (the marking RNG stream is untouched).
        let path_hash = SimRng::new(
            self.cfg
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(self.senders.len() as u64)
                ^ ((spec.src.0 as u64) << 32 | spec.dst.0 as u64),
        )
        .next_u64();
        let id = self.senders.push(spec, path_hash);
        self.receivers.push();
        self.timer_ids.push(Vec::new());
        self.rate_window_bytes.push(0);
        self.rate_window_start.push(start);
        self.rate_traces.push(Vec::new());
        self.delivered_bytes.push(0);
        self.events.schedule(start, Ev::FlowStart(id));
        Ok(id)
    }

    /// The line rate of a host's uplink.
    fn line_rate(&self, host: NodeId) -> f64 {
        let l = self.topo.out_links(host)[0]; // hosts have exactly one uplink
        self.topo.link(l).bandwidth_bps
    }

    /// Run until `end`; returns the report. Panics on an invalid config or
    /// fault schedule; [`Engine::try_run`] is the non-panicking equivalent.
    /// (Unlike `try_run`, an empty flow set is tolerated here for
    /// backwards compatibility and yields an empty report.)
    pub fn run(&mut self, end: SimTime) -> SimReport {
        self.cfg.validate().unwrap_or_else(|e| panic!("{e}"));
        self.install_faults().unwrap_or_else(|e| panic!("{e}"));
        self.run_inner(end)
    }

    /// Run until `end`, validating the configuration, the fault schedule
    /// and the flow set first; a rejected input is a descriptive
    /// [`SimError`] instead of a downstream panic.
    pub fn try_run(&mut self, end: SimTime) -> Result<SimReport, SimError> {
        self.cfg.validate()?;
        if self.senders.is_empty() {
            return Err(SimError::config(
                "Engine::try_run",
                "empty flow set: register at least one flow before running",
            ));
        }
        self.install_faults()?;
        Ok(self.run_inner(end))
    }

    /// Compile the fault schedule (if any) onto the event queue. Idempotent:
    /// only the first call on an engine installs.
    fn install_faults(&mut self) -> Result<(), SimError> {
        if self.faults_installed {
            return Ok(());
        }
        self.faults_installed = true;
        let Some(schedule) = self.cfg.faults.clone() else {
            return Ok(());
        };
        schedule.validate(self.topo.link_count())?;
        if schedule.is_empty() {
            return Ok(());
        }
        self.faults_active = true;
        self.link_faults = (0..self.topo.link_count())
            .map(|l| LinkFaultState::new(faults::link_stream(schedule.seed, l)))
            .collect();
        let mut window = 0u32;
        for ev in &schedule.events {
            let at = SimTime::from_secs_f64(ev.at_s);
            match ev.kind {
                FaultKind::LinkFlap { link, down_s } => {
                    self.push_fault_op(at, FaultOp::LinkDown { link });
                    let up_at = at + SimDuration::from_secs_f64(down_s);
                    self.push_fault_op(up_at, FaultOp::LinkUp { link });
                }
                FaultKind::PacketLoss {
                    link,
                    probability,
                    duration_s,
                } => {
                    self.push_fault_window(
                        at,
                        duration_s,
                        link,
                        &mut window,
                        WindowEffect::DataLoss(probability),
                    );
                }
                FaultKind::CnpLoss {
                    link,
                    probability,
                    duration_s,
                } => {
                    self.push_fault_window(
                        at,
                        duration_s,
                        link,
                        &mut window,
                        WindowEffect::CnpLoss(probability),
                    );
                }
                FaultKind::RttJitter {
                    link,
                    sigma_s,
                    duration_s,
                } => {
                    self.push_fault_window(
                        at,
                        duration_s,
                        link,
                        &mut window,
                        WindowEffect::Jitter(sigma_s),
                    );
                }
                FaultKind::DelaySpike {
                    link,
                    extra_s,
                    duration_s,
                } => {
                    self.push_fault_window(
                        at,
                        duration_s,
                        link,
                        &mut window,
                        WindowEffect::ExtraDelay(extra_s),
                    );
                }
                FaultKind::PauseStorm {
                    link,
                    period_s,
                    pause_frac,
                    duration_s,
                } => {
                    let op = FaultOp::StormTick {
                        link,
                        period: SimDuration::from_secs_f64(period_s),
                        pause: SimDuration::from_secs_f64(period_s * pause_frac),
                        until: at + SimDuration::from_secs_f64(duration_s),
                    };
                    self.push_fault_op(at, op);
                }
                FaultKind::Perturb { target, scale } => {
                    self.push_fault_op(at, FaultOp::Perturb { target, scale });
                }
            }
        }
        Ok(())
    }

    fn push_fault_op(&mut self, at: SimTime, op: FaultOp) {
        let idx = self.fault_ops.len();
        self.fault_ops.push(op);
        self.events.schedule(at, Ev::Fault(idx));
    }

    fn push_fault_window(
        &mut self,
        at: SimTime,
        duration_s: f64,
        link: usize,
        window: &mut u32,
        effect: WindowEffect,
    ) {
        let id = *window;
        *window += 1;
        self.push_fault_op(
            at,
            FaultOp::WindowStart {
                link,
                window: id,
                effect,
            },
        );
        let end_at = at + SimDuration::from_secs_f64(duration_s);
        self.push_fault_op(end_at, FaultOp::WindowEnd { link, window: id });
    }

    fn run_inner(&mut self, end: SimTime) -> SimReport {
        // Each run starts a fresh causal chain: the first dispatches must
        // not back-point into a previous run on the same thread.
        obs::flight::set_cause(None);
        if let Some(pi) = &self.cfg.pi_aqm {
            let at = self.now + pi.update_interval;
            self.events.schedule(at, Ev::AqmTick);
        }
        while let Some(t) = self.events.peek_time() {
            if t > end {
                break;
            }
            let Some((t, ev)) = self.events.pop() else {
                break; // unreachable: peek_time just returned Some
            };
            self.now = t;
            self.events_processed += 1;
            self.handle(ev);
        }
        self.now = end;
        SimReport {
            fcts: std::mem::take(&mut self.fcts),
            queue_traces: std::mem::take(&mut self.queue_traces),
            rate_traces: std::mem::take(&mut self.rate_traces),
            delivered_bytes: std::mem::take(&mut self.delivered_bytes),
            marked_packets: self.marked_packets,
            data_packets: self.data_packets,
            cnps_sent: self.cnps_sent,
            first_mark_time_s: self.first_mark_time.map(SimTime::as_secs_f64),
            pfc_pauses: self.ports.pauses.iter().sum(),
            pfc_paused_s: self
                .ports
                .paused_total
                .iter()
                .zip(&self.ports.paused_since)
                .map(|(&total, &since)| {
                    let mut d = total;
                    if let Some(since) = since {
                        d += end.saturating_since(since);
                    }
                    d.as_secs_f64()
                })
                .sum(),
            fault_drops: self.fault_drops,
            fault_pauses: self.fault_pauses,
            fault_paused_s: self
                .link_faults
                .iter()
                .map(|fs| {
                    let mut d = fs.storm_total;
                    if let Some(since) = fs.storm_since {
                        d += end.saturating_since(since);
                    }
                    d.as_secs_f64()
                })
                .sum(),
            faults_injected: self.faults_injected,
            events_processed: self.events_processed,
            end_time_s: end.as_secs_f64(),
        }
    }

    fn handle(&mut self, ev: Ev) {
        let _span = obs::span::enter(obs::Phase::EventDispatch);
        match ev {
            Ev::FlowStart(f) => self.flow_start(f),
            Ev::Pacer(f) => self.pacer_fire(f),
            Ev::TxDone(l) => self.tx_done(l),
            Ev::Deliver(l, p) => self.deliver(l, p),
            Ev::CcTimer(f, kind) => self.cc_timer(f, kind),
            Ev::AqmTick => self.aqm_tick(),
            Ev::Fault(idx) => self.fault_fire(idx),
            Ev::FaultStormRelease(l) => self.fault_storm_release(l),
        }
    }

    /// Execute one compiled fault-plane operation. Every injected fault is
    /// counted and emitted as an obs trace event.
    fn fault_fire(&mut self, idx: usize) {
        let op = self.fault_ops[idx];
        self.faults_injected += 1;
        let t_s = self.now.as_secs_f64();
        match op {
            FaultOp::LinkDown { link } => {
                self.link_faults[link].up = false;
                obs::metrics::counter_inc("netsim.fault_link_flaps");
                if obs::trace::enabled() {
                    obs::trace::record(t_s, obs::Event::LinkDown { link: link as u64 });
                }
            }
            FaultOp::LinkUp { link } => {
                self.link_faults[link].up = true;
                if obs::trace::enabled() {
                    obs::trace::record(t_s, obs::Event::LinkUp { link: link as u64 });
                }
                // Drain whatever queued while the link was down.
                self.try_transmit(LinkId(link));
            }
            FaultOp::WindowStart {
                link,
                window,
                effect,
            } => {
                self.link_faults[link].windows.push((window, effect));
                obs::metrics::counter_inc("netsim.fault_windows");
                if obs::trace::enabled() {
                    obs::trace::record(
                        t_s,
                        obs::Event::FaultWindow {
                            link: link as u64,
                            effect: effect.label(),
                            starting: true,
                        },
                    );
                }
            }
            FaultOp::WindowEnd { link, window } => {
                let fs = &mut self.link_faults[link];
                if let Some(pos) = fs.windows.iter().position(|(w, _)| *w == window) {
                    let (_, effect) = fs.windows.remove(pos);
                    if obs::trace::enabled() {
                        obs::trace::record(
                            t_s,
                            obs::Event::FaultWindow {
                                link: link as u64,
                                effect: effect.label(),
                                starting: false,
                            },
                        );
                    }
                }
            }
            FaultOp::StormTick {
                link,
                period,
                pause,
                until,
            } => {
                if self.now > until {
                    return;
                }
                let fs = &mut self.link_faults[link];
                if !fs.storm_paused {
                    fs.storm_paused = true;
                    fs.storm_since = Some(self.now);
                    self.fault_pauses += 1;
                    obs::metrics::counter_inc("netsim.fault_pauses");
                    if obs::trace::enabled() {
                        obs::trace::record(t_s, obs::Event::FaultPause { link: link as u64 });
                    }
                }
                self.events
                    .schedule(self.now + pause, Ev::FaultStormRelease(LinkId(link)));
                let next = self.now + period;
                if next <= until {
                    self.events.schedule(next, Ev::Fault(idx));
                }
            }
            FaultOp::Perturb { target, scale } => {
                match target {
                    ParamTarget::RedKmax => {
                        let scaled = (self.cfg.red.kmax_bytes as f64 * scale).max(1.0) as u64;
                        // Preserve kmin <= kmax so the RED curve stays valid.
                        self.cfg.red.kmax_bytes = scaled.max(self.cfg.red.kmin_bytes);
                    }
                    ParamTarget::CcRateIncrease => {
                        for cc in &mut self.senders.cc {
                            cc.perturb(target, scale);
                        }
                    }
                }
                obs::metrics::counter_inc("netsim.fault_perturbations");
                if obs::trace::enabled() {
                    obs::trace::record(
                        t_s,
                        obs::Event::ParamPerturbed {
                            param: target.label(),
                            scale,
                        },
                    );
                }
            }
        }
    }

    /// End of a pause-storm forced-pause interval.
    fn fault_storm_release(&mut self, link: LinkId) {
        let fs = &mut self.link_faults[link.0];
        if fs.storm_paused {
            fs.storm_paused = false;
            if let Some(since) = fs.storm_since.take() {
                fs.storm_total += self.now.saturating_since(since);
            }
            self.try_transmit(link);
        }
    }

    /// Sum of active constant extra delays plus one exponential sample per
    /// active jitter window, drawn from the link's fault sub-stream.
    fn fault_extra_delay_s(&mut self, link: LinkId) -> f64 {
        let fs = &mut self.link_faults[link.0];
        if fs.windows.is_empty() {
            return 0.0;
        }
        let mut extra = 0.0;
        for i in 0..fs.windows.len() {
            match fs.windows[i].1 {
                WindowEffect::ExtraDelay(d) => extra += d,
                WindowEffect::Jitter(sigma) if sigma > 0.0 => extra += fs.rng.exponential(sigma),
                _ => {}
            }
        }
        extra
    }

    /// Fault-plane loss check at delivery. Data packets see the combined
    /// data-loss windows; CNPs see the CNP-loss windows; ACKs are never
    /// targeted. Draws from the link's fault RNG sub-stream only when a
    /// loss window is active, so inactive links consume no randomness.
    fn fault_drop(&mut self, link: LinkId, pkt: &Packet) -> bool {
        let is_cnp = matches!(pkt.kind, PacketKind::Cnp);
        if pkt.is_control() && !is_cnp {
            return false;
        }
        let p_drop = {
            let fs = &self.link_faults[link.0];
            if fs.windows.is_empty() {
                return false;
            }
            let mut keep = 1.0;
            for (_, e) in &fs.windows {
                match *e {
                    WindowEffect::DataLoss(p) if !is_cnp => keep *= 1.0 - p,
                    WindowEffect::CnpLoss(p) if is_cnp => keep *= 1.0 - p,
                    _ => {}
                }
            }
            1.0 - keep
        };
        if p_drop <= 0.0 || self.link_faults[link.0].rng.next_f64() >= p_drop {
            return false;
        }
        self.fault_drops += 1;
        obs::metrics::counter_inc("netsim.fault_drops");
        if obs::trace::enabled() {
            obs::trace::record(
                self.now.as_secs_f64(),
                obs::Event::FaultDrop {
                    flow: pkt.flow.0 as u64,
                    link: link.0 as u64,
                    control: is_cnp,
                },
            );
        }
        true
    }

    /// Discrete PI-AQM update (Hollot-style): for every switch egress queue,
    /// `p += a·(q − q_ref) − b·(q_old − q_ref)`, clamped to [0, 1].
    fn aqm_tick(&mut self) {
        let Some(pi) = self.cfg.pi_aqm.clone() else {
            return;
        };
        for l in 0..self.topo.link_count() {
            if !matches!(
                self.topo.kind(self.topo.link(LinkId(l)).src),
                NodeKind::Switch
            ) {
                continue;
            }
            let q_now = self.ports.data_bytes[l];
            let e_now = q_now as f64 - pi.q_ref_bytes as f64;
            let e_old = self.ports.pi_q_old[l] as f64 - pi.q_ref_bytes as f64;
            self.ports.pi_p[l] = (self.ports.pi_p[l] + pi.a_per_byte * e_now
                - pi.b_per_byte * e_old)
                .clamp(0.0, 1.0);
            self.ports.pi_q_old[l] = q_now;
        }
        let at = self.now + pi.update_interval;
        self.events.schedule(at, Ev::AqmTick);
    }

    fn flow_start(&mut self, f: FlowId) {
        let line = self.line_rate(self.senders.src[f.0]);
        let now = self.now;
        let update = self.senders.cc[f.0].on_start(now, line);
        self.apply_update(f, update);
        if self.senders.rate_bps[f.0] <= 0.0 {
            self.senders.rate_bps[f.0] = line;
        }
        self.events.schedule(self.now, Ev::Pacer(f));
    }

    fn apply_update(&mut self, f: FlowId, update: CcUpdate) {
        if let Some(r) = update.new_rate_bps {
            desim::invariants::finite_rate("cc update rate", r);
            self.senders.rate_bps[f.0] = r.max(1e3);
            obs::metrics::counter_inc("netsim.rate_updates");
            if obs::timeseries::enabled() {
                obs::timeseries::sample(
                    "netsim.rate_bps",
                    f.0 as u64,
                    self.cfg.queue_trace_resolution_s,
                    self.now.as_secs_f64(),
                    self.senders.rate_bps[f.0],
                );
            }
            if obs::trace::enabled() {
                obs::trace::record(
                    self.now.as_secs_f64(),
                    obs::Event::RateUpdate {
                        flow: f.0 as u64,
                        rate_bps: self.senders.rate_bps[f.0],
                    },
                );
            }
        }
        for (kind, at) in update.timers {
            let at = at.max(self.now);
            let k = kind as usize;
            let slots = &mut self.timer_ids[f.0];
            if slots.len() <= k {
                slots.resize(k + 1, None);
            }
            // Re-arming cancels the previous event (O(1) on the wheel), so
            // the queue holds at most one live timer per (flow, kind) and a
            // popped CcTimer is always the most recent arming.
            if let Some(old) = slots[k].take() {
                self.events.cancel(old);
            }
            slots[k] = Some(self.events.schedule(at, Ev::CcTimer(f, kind)));
        }
    }

    fn cc_timer(&mut self, f: FlowId, kind: u8) {
        // Cancellation-on-rearm guarantees this firing is the live arming
        // for (flow, kind); just clear the slot.
        let k = kind as usize;
        self.timer_ids[f.0][k] = None;
        if self.senders.completed[f.0].is_some() {
            return;
        }
        let now = self.now;
        let update = self.senders.cc[f.0].on_event(now, CcEvent::Timer { kind });
        self.apply_update(f, update);
    }

    fn next_packet_id(&mut self) -> u64 {
        self.next_packet_id += 1;
        self.next_packet_id
    }

    /// Pacer: release the next packet (or chunk) of flow `f`.
    fn pacer_fire(&mut self, f: FlowId) {
        if self.senders.fully_sent(f) || self.senders.completed[f.0].is_some() {
            return;
        }
        let src = self.senders.src[f.0];
        let Some(uplink) =
            self.topo
                .next_hop_for(src, self.senders.dst[f.0], self.senders.path_hash[f.0])
        else {
            // add_flow validated both endpoints are connected hosts; if the
            // route vanished it is a bug, but stalling the flow beats aborting.
            debug_assert!(false, "no route for registered flow");
            return;
        };

        match self.senders.pacing[f.0] {
            Pacing::PerPacket => {
                let pkt = self.make_data_packet(f);
                let wire = pkt.size_bytes;
                let h = self.packets.alloc(pkt);
                self.enqueue(uplink, h);
                let gap =
                    SimDuration::serialization(wire as u64, self.senders.rate_bps[f.0].max(1e3));
                self.senders.next_tx[f.0] = self.now + gap;
                if !self.senders.fully_sent(f) {
                    let at = self.senders.next_tx[f.0];
                    self.events.schedule(at, Ev::Pacer(f));
                }
                let payload = wire.saturating_sub(self.cfg.header_bytes) as u64;
                self.notify_sent(f, payload);
            }
            Pacing::PerChunk { seg_bytes } => {
                // Release a whole chunk back-to-back (the NIC queue
                // serializes it at line rate), then idle until the average
                // rate matches the target.
                let mut chunk_payload = 0u64;
                self.senders.chunk_started[f.0] = self.now;
                let seg = seg_bytes.max(self.cfg.mtu_bytes) as u64;
                while chunk_payload < seg && !self.senders.fully_sent(f) {
                    let last_in_chunk = {
                        let remaining = self.senders.remaining(f);
                        let next_payload = remaining.min(self.cfg.mtu_bytes as u64);
                        chunk_payload + next_payload >= seg || remaining <= next_payload
                    };
                    let pkt = self.make_chunk_packet(f, last_in_chunk);
                    chunk_payload += pkt.payload_bytes();
                    let h = self.packets.alloc(pkt);
                    self.enqueue(uplink, h);
                }
                self.notify_sent(f, chunk_payload);
                if !self.senders.fully_sent(f) {
                    let gap = SimDuration::serialization(
                        chunk_payload
                            + (chunk_payload / self.cfg.mtu_bytes as u64 + 1)
                                * self.cfg.header_bytes as u64,
                        self.senders.rate_bps[f.0].max(1e3),
                    );
                    self.senders.next_tx[f.0] = self.now + gap;
                    let at = self.senders.next_tx[f.0];
                    self.events.schedule(at, Ev::Pacer(f));
                }
            }
        }
    }

    fn notify_sent(&mut self, f: FlowId, payload: u64) {
        self.senders.sent_payload[f.0] += payload;
        let now = self.now;
        let update = self.senders.cc[f.0].on_event(now, CcEvent::SentBytes { bytes: payload });
        self.apply_update(f, update);
    }

    /// Build the next per-packet-pacing data packet for `f`, maintaining the
    /// ACK-request chunking state.
    fn make_data_packet(&mut self, f: FlowId) -> Packet {
        let id = self.next_packet_id();
        let s = &mut self.senders;
        let payload = s.remaining(f).min(self.cfg.mtu_bytes as u64) as u32;
        let offset = s.next_offset[f.0];
        s.next_offset[f.0] += payload as u64;
        let last_of_flow = s.fully_sent(f);
        if s.since_ack_request[f.0] == 0 {
            s.chunk_started[f.0] = self.now;
        }
        s.since_ack_request[f.0] += payload;
        let ack_request = s.since_ack_request[f.0] >= s.ack_chunk_bytes[f.0] || last_of_flow;
        if ack_request {
            s.since_ack_request[f.0] = 0;
        }
        Packet {
            id,
            flow: f,
            src: s.src[f.0],
            dst: s.dst[f.0],
            size_bytes: payload + self.cfg.header_bytes,
            kind: PacketKind::Data {
                offset,
                payload,
                ack_request,
                last_of_flow,
                // Under per-packet pacing the RTT probe is the ack-requesting
                // packet itself: hardware timestamps the probe's departure, so
                // the sender's own pacing gaps do not pollute the sample.
                chunk_sent_at: self.now,
            },
            ecn_marked: false,
            injected_at: self.now,
        }
    }

    /// Build the next packet of a per-chunk burst.
    fn make_chunk_packet(&mut self, f: FlowId, last_in_chunk: bool) -> Packet {
        let id = self.next_packet_id();
        let s = &mut self.senders;
        let payload = s.remaining(f).min(self.cfg.mtu_bytes as u64) as u32;
        let offset = s.next_offset[f.0];
        s.next_offset[f.0] += payload as u64;
        let last_of_flow = s.fully_sent(f);
        Packet {
            id,
            flow: f,
            src: s.src[f.0],
            dst: s.dst[f.0],
            size_bytes: payload + self.cfg.header_bytes,
            kind: PacketKind::Data {
                offset,
                payload,
                ack_request: last_in_chunk || last_of_flow,
                last_of_flow,
                chunk_sent_at: s.chunk_started[f.0],
            },
            ecn_marked: false,
            injected_at: self.now,
        }
    }

    /// Enqueue a packet (by handle) on a link's egress queue; start
    /// transmission if the port is idle. Ingress marking happens here.
    fn enqueue(&mut self, link: LinkId, h: PacketHandle) {
        let is_switch = matches!(self.topo.kind(self.topo.link(link).src), NodeKind::Switch);
        let (is_control, size_bytes, flow) = {
            let pkt = self.packets.get(h);
            (pkt.is_control(), pkt.size_bytes, pkt.flow)
        };
        if is_control {
            self.ports.ctrl_q[link.0].push_back(h);
        } else {
            self.ports.data_bytes[link.0] += size_bytes as u64;
            let data_bytes = self.ports.data_bytes[link.0];
            if is_switch && self.cfg.marking == MarkingMode::Ingress {
                let p = if self.cfg.pi_aqm.is_some() {
                    self.ports.pi_p[link.0]
                } else {
                    self.cfg.red.probability(data_bytes)
                };
                if p > 0.0 && self.rng.next_f64() < p {
                    self.packets.get_mut(h).ecn_marked = true;
                    self.marked_packets += 1;
                    self.first_mark_time.get_or_insert(self.now);
                    obs::metrics::counter_inc("netsim.ecn_marks");
                    if obs::timeseries::enabled() {
                        // One 1.0-sample per mark: a window's count IS the
                        // mark count, so count/window_s is the mark rate.
                        obs::timeseries::sample(
                            "netsim.ecn_mark",
                            link.0 as u64,
                            self.cfg.queue_trace_resolution_s,
                            self.now.as_secs_f64(),
                            1.0,
                        );
                    }
                    if obs::trace::enabled() {
                        obs::trace::record(
                            self.now.as_secs_f64(),
                            obs::Event::EcnMark {
                                flow: flow.0 as u64,
                                link: link.0 as u64,
                                queue_bytes: data_bytes,
                            },
                        );
                    }
                }
            }
            self.ports.data_q[link.0].push_back(h);
            if is_switch {
                let bytes = data_bytes as f64;
                desim::invariants::bounded_queue("switch egress queue", bytes, f64::INFINITY);
                if let Some(tr) = self.queue_traces.get_mut(link) {
                    tr.record(self.now, bytes);
                }
                if obs::timeseries::enabled() {
                    let t_s = self.now.as_secs_f64();
                    let w = self.cfg.queue_trace_resolution_s;
                    obs::timeseries::sample("netsim.queue_bytes", link.0 as u64, w, t_s, bytes);
                    obs::timeseries::sample(
                        "netsim.arrival_bytes",
                        link.0 as u64,
                        w,
                        t_s,
                        size_bytes as f64,
                    );
                }
            }
        }
        self.try_transmit(link);
    }

    /// If the port is idle (and unpaused), start serializing the next packet.
    fn try_transmit(&mut self, link: LinkId) {
        let is_switch = matches!(self.topo.kind(self.topo.link(link).src), NodeKind::Switch);
        let (bw, prop) = {
            let l = self.topo.link(link);
            (l.bandwidth_bps, l.prop_delay)
        };
        // Fault plane: a downed link transmits nothing; a pause-storm forced
        // pause blocks the data class only (like PFC, control rides a
        // separate priority).
        let (link_up, storm_paused) = if self.faults_active {
            let fs = &self.link_faults[link.0];
            (fs.up, fs.storm_paused)
        } else {
            (true, false)
        };
        if !link_up {
            return;
        }
        if self.ports.busy[link.0] {
            return;
        }
        // Strict priority: control queue first; PAUSE affects data only
        // (PFC pauses the lossless data class; control rides a separate
        // priority, as both protocols prioritize feedback).
        let h = if let Some(h) = self.ports.ctrl_q[link.0].pop_front() {
            h
        } else if !self.ports.paused[link.0] && !storm_paused {
            match self.ports.data_q[link.0].pop_front() {
                Some(h) => h,
                None => return,
            }
        } else {
            return;
        };

        let (is_control, size_bytes, flow) = {
            let pkt = self.packets.get(h);
            (pkt.is_control(), pkt.size_bytes, pkt.flow)
        };
        if !is_control {
            // Egress marking: the mark reflects the queue at departure time.
            if is_switch && self.cfg.marking == MarkingMode::Egress {
                let data_bytes = self.ports.data_bytes[link.0];
                let p = if self.cfg.pi_aqm.is_some() {
                    self.ports.pi_p[link.0]
                } else {
                    self.cfg.red.probability(data_bytes)
                };
                if p > 0.0 && self.rng.next_f64() < p {
                    self.packets.get_mut(h).ecn_marked = true;
                    self.marked_packets += 1;
                    self.first_mark_time.get_or_insert(self.now);
                    obs::metrics::counter_inc("netsim.ecn_marks");
                    if obs::timeseries::enabled() {
                        // One 1.0-sample per mark: a window's count IS the
                        // mark count, so count/window_s is the mark rate.
                        obs::timeseries::sample(
                            "netsim.ecn_mark",
                            link.0 as u64,
                            self.cfg.queue_trace_resolution_s,
                            self.now.as_secs_f64(),
                            1.0,
                        );
                    }
                    if obs::trace::enabled() {
                        obs::trace::record(
                            self.now.as_secs_f64(),
                            obs::Event::EcnMark {
                                flow: flow.0 as u64,
                                link: link.0 as u64,
                                queue_bytes: data_bytes,
                            },
                        );
                    }
                }
            }
            self.ports.data_bytes[link.0] -= size_bytes as u64;
            if is_switch {
                let bytes = self.ports.data_bytes[link.0] as f64;
                if let Some(tr) = self.queue_traces.get_mut(link) {
                    tr.record(self.now, bytes);
                }
                if obs::timeseries::enabled() {
                    let t_s = self.now.as_secs_f64();
                    let w = self.cfg.queue_trace_resolution_s;
                    obs::timeseries::sample("netsim.queue_bytes", link.0 as u64, w, t_s, bytes);
                    obs::timeseries::sample(
                        "netsim.departure_bytes",
                        link.0 as u64,
                        w,
                        t_s,
                        size_bytes as f64,
                    );
                }
            }
        }
        self.ports.busy[link.0] = true;
        let ser = SimDuration::serialization(size_bytes as u64, bw);
        self.events.schedule(self.now + ser, Ev::TxDone(link));
        let mut deliver_at = self.now + ser + prop;
        if self.faults_active {
            let extra_s = self.fault_extra_delay_s(link);
            if extra_s > 0.0 {
                deliver_at += SimDuration::from_secs_f64(extra_s);
                obs::metrics::counter_inc("netsim.fault_delays");
                if obs::trace::enabled() {
                    obs::trace::record(
                        self.now.as_secs_f64(),
                        obs::Event::FaultDelay {
                            link: link.0 as u64,
                            extra_s,
                        },
                    );
                }
            }
        }
        self.events.schedule(deliver_at, Ev::Deliver(link, h));
        self.update_pfc(link);
    }

    fn tx_done(&mut self, link: LinkId) {
        self.ports.busy[link.0] = false;
        self.try_transmit(link);
    }

    /// PFC emulation: when this port's data backlog exceeds the pause
    /// threshold, pause every link feeding this node; resume below the
    /// resume threshold. (Simplified node-granularity PFC; the paper's
    /// analysis assumes ECN acts first and ignores PFC entirely.)
    fn update_pfc(&mut self, link: LinkId) {
        let Some(pfc) = self.cfg.pfc.clone() else {
            return;
        };
        let node = self.topo.link(link).src;
        let backlog = self.ports.data_bytes[link.0];
        let pause = backlog > pfc.pause_threshold_bytes;
        let resume = backlog < pfc.resume_threshold_bytes;
        if !pause && !resume {
            return;
        }
        for l in 0..self.topo.link_count() {
            if self.topo.link(LinkId(l)).dst == node {
                if pause && !self.ports.paused[l] {
                    self.ports.paused[l] = true;
                    self.ports.paused_since[l] = Some(self.now);
                    self.ports.pauses[l] += 1;
                    obs::metrics::counter_inc("netsim.pfc_pauses");
                    if obs::timeseries::enabled() {
                        obs::timeseries::sample(
                            "netsim.pfc_paused",
                            l as u64,
                            self.cfg.queue_trace_resolution_s,
                            self.now.as_secs_f64(),
                            1.0,
                        );
                    }
                    if obs::trace::enabled() {
                        obs::trace::record(
                            self.now.as_secs_f64(),
                            obs::Event::PfcPause { link: l as u64 },
                        );
                    }
                } else if resume && self.ports.paused[l] {
                    self.ports.paused[l] = false;
                    if let Some(since) = self.ports.paused_since[l].take() {
                        let d = self.now.saturating_since(since);
                        self.ports.paused_total[l] += d;
                    }
                    obs::metrics::counter_inc("netsim.pfc_resumes");
                    if obs::timeseries::enabled() {
                        obs::timeseries::sample(
                            "netsim.pfc_paused",
                            l as u64,
                            self.cfg.queue_trace_resolution_s,
                            self.now.as_secs_f64(),
                            0.0,
                        );
                    }
                    if obs::trace::enabled() {
                        obs::trace::record(
                            self.now.as_secs_f64(),
                            obs::Event::PfcResume { link: l as u64 },
                        );
                    }
                    self.try_transmit(LinkId(l));
                }
            }
        }
    }

    fn deliver(&mut self, link: LinkId, h: PacketHandle) {
        let pkt = *self.packets.get(h);
        if self.faults_active && self.fault_drop(link, &pkt) {
            self.packets.free(h);
            return;
        }
        let node = self.topo.link(link).dst;
        if matches!(self.topo.kind(node), NodeKind::Switch) || node != pkt.dst {
            // Forward toward the destination: the handle moves to the next
            // port queue, the packet body never moves.
            let Some(next) =
                self.topo
                    .next_hop_for(node, pkt.dst, self.senders.path_hash[pkt.flow.0])
            else {
                // Topology is connected by construction; a stray packet is a
                // bug, but dropping it degrades gracefully in release builds.
                debug_assert!(false, "unroutable packet destination");
                self.packets.free(h);
                return;
            };
            self.enqueue(next, h);
            return;
        }
        // Host consumption: the packet leaves the network, so its arena slot
        // is recycled before any ACK/CNP response allocates (LIFO reuse keeps
        // the response on the same hot cache line).
        self.packets.free(h);
        match pkt.kind {
            PacketKind::Data {
                payload,
                ack_request,
                last_of_flow,
                chunk_sent_at,
                ..
            } => {
                self.data_packets += 1;
                let f = pkt.flow;
                self.delivered_bytes[f.0] += payload as u64;
                self.record_rate_sample(f, payload as u64);
                self.receivers.received[f.0] += payload as u64;
                self.receivers.last_byte_at[f.0] = Some(self.now);

                // DCQCN NP behaviour: CNP on marked packet, coalesced to τ.
                if pkt.ecn_marked {
                    let due = match self.receivers.last_cnp[f.0] {
                        None => true,
                        Some(t) => self.now.saturating_since(t) >= self.cfg.cnp_interval,
                    };
                    if due {
                        self.receivers.last_cnp[f.0] = Some(self.now);
                        self.cnps_sent += 1;
                        obs::metrics::counter_inc("netsim.cnps_sent");
                        if obs::trace::enabled() {
                            obs::trace::record(
                                self.now.as_secs_f64(),
                                obs::Event::CnpSent { flow: f.0 as u64 },
                            );
                        }
                        let cnp = Packet {
                            id: 0,
                            flow: f,
                            src: pkt.dst,
                            dst: pkt.src,
                            size_bytes: self.cfg.control_packet_bytes,
                            kind: PacketKind::Cnp,
                            ecn_marked: false,
                            injected_at: self.now,
                        };
                        self.send_control(cnp);
                    }
                }
                if ack_request {
                    let ack = Packet {
                        id: 0,
                        flow: f,
                        src: pkt.dst,
                        dst: pkt.src,
                        size_bytes: self.cfg.control_packet_bytes,
                        kind: PacketKind::Ack {
                            chunk_sent_at,
                            chunk_bytes: self.senders.ack_chunk_bytes[f.0],
                        },
                        ecn_marked: false,
                        injected_at: self.now,
                    };
                    self.send_control(ack);
                }
                if last_of_flow {
                    let s = &mut self.senders;
                    if s.completed[f.0].is_none() {
                        s.completed[f.0] = Some(self.now);
                        let start = s.start[f.0];
                        let fct_s = self.now.saturating_since(start).as_secs_f64();
                        self.fcts.push(FctRecord {
                            flow: f.0,
                            size_bytes: s.size_bytes[f.0].unwrap_or(s.next_offset[f.0]),
                            start_s: start.as_secs_f64(),
                            fct_s,
                        });
                        // Streaming FCT percentiles: O(buckets) regardless
                        // of flow count.
                        obs::timeseries::observe("netsim.fct_ms", 0, fct_s * 1e3);
                    }
                }
            }
            PacketKind::Ack { chunk_sent_at, .. } => {
                let f = pkt.flow;
                if self.senders.completed[f.0].is_some() {
                    return;
                }
                let rtt = self.now.saturating_since(chunk_sent_at);
                let now = self.now;
                let update = self.senders.cc[f.0].on_event(now, CcEvent::RttSample { rtt });
                self.apply_update(f, update);
            }
            PacketKind::Cnp => {
                let f = pkt.flow;
                if self.senders.completed[f.0].is_some() {
                    return;
                }
                let now = self.now;
                let update = self.senders.cc[f.0].on_event(now, CcEvent::Cnp);
                self.apply_update(f, update);
            }
        }
    }

    /// Route a control packet from its source host toward its destination.
    fn send_control(&mut self, pkt: Packet) {
        let Some(l) = self
            .topo
            .next_hop_for(pkt.src, pkt.dst, self.senders.path_hash[pkt.flow.0])
        else {
            // Control packets reverse a validated data route; losing one is
            // recoverable (feedback is periodic), aborting is not.
            debug_assert!(false, "no control route");
            return;
        };
        let h = self.packets.alloc(pkt);
        self.enqueue(l, h);
    }

    fn record_rate_sample(&mut self, f: FlowId, bytes: u64) {
        let Some(window) = self.cfg.rate_trace_window else {
            return;
        };
        self.rate_window_bytes[f.0] += bytes;
        let start = self.rate_window_start[f.0];
        let elapsed = self.now.saturating_since(start);
        if elapsed >= window {
            let bps = self.rate_window_bytes[f.0] as f64 * 8.0 / elapsed.as_secs_f64();
            self.rate_traces[f.0].push((self.now.as_secs_f64(), bps));
            self.rate_window_bytes[f.0] = 0;
            self.rate_window_start[f.0] = self.now;
        }
    }

    /// Current simulated time (for tests).
    pub fn now(&self) -> SimTime {
        self.now
    }
}

impl Engine {
    /// Queue trace for a specific link (test helper).
    pub fn queue_trace(&self, link: LinkId) -> Option<&TimeSeries> {
        self.queue_traces.get(link)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::FixedRate;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    fn flow(src: NodeId, dst: NodeId, size: u64, rate: f64) -> FlowSpec {
        FlowSpec {
            src,
            dst,
            size_bytes: Some(size),
            start: SimTime::ZERO,
            pacing: Pacing::PerPacket,
            cc: Box::new(FixedRate { rate_bps: rate }),
            ack_chunk_bytes: 16_000,
        }
    }

    #[test]
    fn single_flow_delivers_all_bytes() {
        let (topo, senders, receiver) = Topology::single_switch(1, 10e9, us(1));
        let mut eng = Engine::new(topo, EngineConfig::default());
        eng.add_flow(flow(senders[0], receiver, 100_000, 5e9));
        let report = eng.run(SimTime::from_millis(10));
        assert_eq!(report.delivered_bytes[0], 100_000);
        assert_eq!(report.fcts.len(), 1);
        assert_eq!(report.fcts[0].size_bytes, 100_000);
    }

    #[test]
    fn sub_mtu_flow_completes() {
        // A 1-byte flow: one packet, one completion, exact byte accounting.
        let (topo, senders, receiver) = Topology::single_switch(1, 10e9, us(1));
        let mut eng = Engine::new(topo, EngineConfig::default());
        eng.add_flow(flow(senders[0], receiver, 1, 1e9));
        let report = eng.run(SimTime::from_millis(1));
        assert_eq!(report.delivered_bytes[0], 1);
        assert_eq!(report.fcts.len(), 1);
        assert_eq!(report.data_packets, 1);
    }

    #[test]
    fn exact_mtu_multiple_flow_completes() {
        let (topo, senders, receiver) = Topology::single_switch(1, 10e9, us(1));
        let mut eng = Engine::new(topo, EngineConfig::default());
        eng.add_flow(flow(senders[0], receiver, 3_000, 1e9)); // 3 packets
        let report = eng.run(SimTime::from_millis(1));
        assert_eq!(report.delivered_bytes[0], 3_000);
        assert_eq!(report.data_packets, 3);
    }

    #[test]
    fn delayed_start_flow() {
        let (topo, senders, receiver) = Topology::single_switch(1, 10e9, us(1));
        let mut eng = Engine::new(topo, EngineConfig::default());
        let mut spec = flow(senders[0], receiver, 10_000, 5e9);
        spec.start = SimTime::from_millis(5);
        eng.add_flow(spec);
        let report = eng.run(SimTime::from_millis(10));
        assert_eq!(report.fcts.len(), 1);
        assert!(
            report.fcts[0].start_s >= 0.005,
            "start respected: {}",
            report.fcts[0].start_s
        );
    }

    #[test]
    fn fct_close_to_ideal_for_uncongested_flow() {
        let (topo, senders, receiver) = Topology::single_switch(1, 10e9, us(1));
        let mut eng = Engine::new(topo, EngineConfig::default());
        // 1 MB at 10 Gbps ≈ 800 µs + small store-and-forward and prop.
        eng.add_flow(flow(senders[0], receiver, 1_000_000, 10e9));
        let report = eng.run(SimTime::from_millis(50));
        let fct = report.fcts[0].fct_s;
        let ideal = 1_000_000.0 * 8.0 / 10e9;
        assert!(fct >= ideal, "fct {fct} can't beat serialization {ideal}");
        assert!(fct < ideal * 1.2 + 20e-6, "fct {fct} too slow vs {ideal}");
    }

    #[test]
    fn two_flows_share_bottleneck_queue_grows() {
        // Two fixed 8 Gbps flows into a 10 Gbps bottleneck must build queue
        // and eventually mark packets.
        let (topo, senders, receiver) = Topology::single_switch(2, 10e9, us(1));
        let mut eng = Engine::new(topo, EngineConfig::default());
        eng.add_flow(flow(senders[0], receiver, 2_000_000, 8e9));
        eng.add_flow(flow(senders[1], receiver, 2_000_000, 8e9));
        let report = eng.run(SimTime::from_millis(20));
        assert_eq!(report.delivered_bytes[0], 2_000_000);
        assert_eq!(report.delivered_bytes[1], 2_000_000);
        assert!(report.marked_packets > 0, "overload must trigger ECN marks");
        assert!(report.cnps_sent > 0, "marked packets must produce CNPs");
        // Queue trace for the switch→receiver link must show growth.
        let (trace_max, _) = report
            .queue_traces
            .values()
            .map(|tr| {
                let max = tr.points().iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
                (max, tr.len())
            })
            .fold((0.0f64, 0usize), |acc, x| (acc.0.max(x.0), acc.1 + x.1));
        assert!(trace_max > 10_000.0, "bottleneck queue should exceed 10 KB");
    }

    #[test]
    fn conservation_no_loss() {
        // Without PFC or caps the simulator is lossless: every payload byte
        // sent is delivered.
        let (topo, senders, receiver) = Topology::single_switch(4, 10e9, us(2));
        let mut eng = Engine::new(topo, EngineConfig::default());
        for &s in senders.iter().take(4) {
            eng.add_flow(flow(s, receiver, 500_000, 9e9));
        }
        let report = eng.run(SimTime::from_millis(50));
        for i in 0..4 {
            assert_eq!(report.delivered_bytes[i], 500_000, "flow {i} lost bytes");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let (topo, senders, receiver) = Topology::single_switch(3, 10e9, us(1));
            let mut eng = Engine::new(topo, EngineConfig::default());
            for &s in senders.iter().take(3) {
                eng.add_flow(flow(s, receiver, 300_000, 7e9));
            }
            let r = eng.run(SimTime::from_millis(20));
            (
                r.marked_packets,
                r.cnps_sent,
                r.fcts.iter().map(|f| f.fct_s.to_bits()).collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn chunk_pacing_produces_completion_acks_and_rtt() {
        // Per-chunk pacing with a CC that counts RTT samples.
        #[derive(Debug)]
        struct RttCounter {
            samples: std::rc::Rc<std::cell::Cell<u64>>,
        }
        impl crate::cc::CongestionControl for RttCounter {
            fn on_start(&mut self, _now: SimTime, line: f64) -> CcUpdate {
                CcUpdate::rate(line / 2.0)
            }
            fn on_event(&mut self, _now: SimTime, ev: CcEvent) -> CcUpdate {
                if matches!(ev, CcEvent::RttSample { .. }) {
                    self.samples.set(self.samples.get() + 1);
                }
                CcUpdate::none()
            }
            fn current_rate_bps(&self) -> f64 {
                5e9
            }
        }
        let samples = std::rc::Rc::new(std::cell::Cell::new(0));
        let (topo, senders, receiver) = Topology::single_switch(1, 10e9, us(1));
        let mut eng = Engine::new(topo, EngineConfig::default());
        eng.add_flow(FlowSpec {
            src: senders[0],
            dst: receiver,
            size_bytes: Some(160_000),
            start: SimTime::ZERO,
            pacing: Pacing::PerChunk { seg_bytes: 16_000 },
            cc: Box::new(RttCounter {
                samples: samples.clone(),
            }),
            ack_chunk_bytes: 16_000,
        });
        let report = eng.run(SimTime::from_millis(10));
        assert_eq!(report.delivered_bytes[0], 160_000);
        // 160 KB / 16 KB chunks = 10 completion events; the final chunk's
        // ACK races flow completion (the engine drops samples for completed
        // flows), so 9 are guaranteed to reach the CC.
        assert!(
            samples.get() >= 9,
            "one RTT sample per chunk, got {}",
            samples.get()
        );
    }

    #[test]
    fn control_packets_prioritized() {
        // With a deep data backlog, a CNP still crosses quickly: flood the
        // switch→receiver port and check CNP round trip stays near the
        // propagation+serialization floor. Indirect check: CNPs are sent
        // and flows react before the queue drains.
        let (topo, senders, receiver) = Topology::single_switch(2, 10e9, us(1));
        let cfg = EngineConfig::default();
        let mut eng = Engine::new(topo, cfg);
        eng.add_flow(flow(senders[0], receiver, 3_000_000, 9e9));
        eng.add_flow(flow(senders[1], receiver, 3_000_000, 9e9));
        let report = eng.run(SimTime::from_millis(30));
        assert!(report.cnps_sent > 5);
    }

    #[test]
    fn ingress_vs_egress_marking_differ() {
        let run = |mode: MarkingMode| {
            let (topo, senders, receiver) = Topology::single_switch(2, 10e9, us(1));
            let mut cfg = EngineConfig::default();
            cfg.marking = mode;
            cfg.seed = 42;
            let mut eng = Engine::new(topo, cfg);
            eng.add_flow(flow(senders[0], receiver, 1_000_000, 8e9));
            eng.add_flow(flow(senders[1], receiver, 1_000_000, 8e9));
            let r = eng.run(SimTime::from_millis(20));
            (r.marked_packets, r.first_mark_time_s)
        };
        let (egress, egress_first) = run(MarkingMode::Egress);
        let (ingress, ingress_first) = run(MarkingMode::Ingress);
        assert!(egress > 0 && ingress > 0);
        // Same seed, different decision points: ingress decides when the
        // packet joins the queue, egress when it departs — the first mark
        // cannot land at the same instant.
        assert_ne!(egress_first, ingress_first);
    }

    #[test]
    fn pi_aqm_pins_queue_with_fixed_overload() {
        // Two fixed flows overloading the port: RED would let the queue sit
        // wherever the rates put it; PI marks harder until the queue is at
        // q_ref. Fixed-rate senders ignore marks, so here we only check the
        // controller state itself rises to full marking.
        let (topo, senders, receiver) = Topology::single_switch(2, 10e9, us(1));
        let mut cfg = EngineConfig::default();
        cfg.pi_aqm = Some(crate::config::PiAqmConfig::default_for(100_000));
        let mut eng = Engine::new(topo, cfg);
        eng.add_flow(flow(senders[0], receiver, 2_000_000, 8e9));
        eng.add_flow(flow(senders[1], receiver, 2_000_000, 8e9));
        let report = eng.run(SimTime::from_millis(20));
        // Persistent overload beyond q_ref → controller saturates → marks.
        assert!(report.marked_packets > 100, "PI must mark under overload");
    }

    #[test]
    fn pfc_statistics_recorded() {
        let (topo, senders, receiver) = Topology::single_switch(2, 10e9, us(1));
        let mut cfg = EngineConfig::default();
        cfg.pfc = Some(PfcConfig {
            pause_threshold_bytes: 30_000,
            resume_threshold_bytes: 20_000,
        });
        let mut eng = Engine::new(topo, cfg);
        eng.add_flow(flow(senders[0], receiver, 1_000_000, 9e9));
        eng.add_flow(flow(senders[1], receiver, 1_000_000, 9e9));
        let report = eng.run(SimTime::from_millis(20));
        assert!(report.pfc_pauses > 0, "overload must trigger PAUSE");
        assert!(report.pfc_paused_s > 0.0);
        assert!(report.pfc_paused_s < 0.02 * 6.0, "bounded by port-seconds");
    }

    #[test]
    fn no_pfc_no_pause_stats() {
        let (topo, senders, receiver) = Topology::single_switch(2, 10e9, us(1));
        let mut eng = Engine::new(topo, EngineConfig::default());
        eng.add_flow(flow(senders[0], receiver, 500_000, 9e9));
        eng.add_flow(flow(senders[1], receiver, 500_000, 9e9));
        let report = eng.run(SimTime::from_millis(10));
        assert_eq!(report.pfc_pauses, 0);
        assert_eq!(report.pfc_paused_s, 0.0);
    }

    #[test]
    fn pfc_pauses_upstream() {
        let (topo, senders, receiver) = Topology::single_switch(2, 10e9, us(1));
        let mut cfg = EngineConfig::default();
        cfg.pfc = Some(PfcConfig {
            pause_threshold_bytes: 30_000,
            resume_threshold_bytes: 20_000,
        });
        let mut eng = Engine::new(topo, cfg);
        eng.add_flow(flow(senders[0], receiver, 1_000_000, 9e9));
        eng.add_flow(flow(senders[1], receiver, 1_000_000, 9e9));
        let report = eng.run(SimTime::from_millis(20));
        // Lossless even with PFC bounds; everything still delivered.
        assert_eq!(report.delivered_bytes[0], 1_000_000);
        assert_eq!(report.delivered_bytes[1], 1_000_000);
        // The bottleneck queue stays near the pause threshold.
        let max_q = report
            .queue_traces
            .values()
            .flat_map(|tr| tr.points().iter().map(|&(_, v)| v))
            .fold(0.0f64, f64::max);
        assert!(max_q < 120_000.0, "PFC should bound the queue, saw {max_q}");
    }

    /// `single_switch` link layout: host `h` gets links `2h` (host→switch)
    /// and `2h+1` (switch→host); the receiver is host `n_senders`, so its
    /// downlink — the bottleneck — is `2 * n_senders + 1`.
    fn bottleneck_link(n_senders: usize) -> usize {
        2 * n_senders + 1
    }

    #[test]
    fn fault_loss_window_drops_data() {
        let (topo, senders, receiver) = Topology::single_switch(1, 10e9, us(1));
        let mut cfg = EngineConfig::default();
        cfg.faults =
            Some(faults::FaultSchedule::new(7).packet_loss(0.0, bottleneck_link(1), 0.5, 0.005));
        let mut eng = Engine::new(topo, cfg);
        eng.add_flow(flow(senders[0], receiver, 500_000, 5e9));
        let report = eng.run(SimTime::from_millis(10));
        assert!(report.fault_drops > 0, "50% loss must drop packets");
        assert!(
            report.delivered_bytes[0] < 500_000,
            "fixed-rate senders do not retransmit, so losses show up"
        );
        assert!(report.faults_injected >= 2, "window start + end");
    }

    #[test]
    fn fault_link_flap_delays_but_delivers() {
        let (topo, senders, receiver) = Topology::single_switch(1, 10e9, us(1));
        let mut cfg = EngineConfig::default();
        // Down the sender uplink for 1 ms mid-transfer: packets queue at the
        // host port and drain on recovery — nothing is lost.
        cfg.faults = Some(faults::FaultSchedule::new(7).link_flap(0.001, 0, 0.001));
        let mut eng = Engine::new(topo, cfg);
        eng.add_flow(flow(senders[0], receiver, 2_000_000, 5e9));
        let report = eng.run(SimTime::from_millis(20));
        assert_eq!(report.delivered_bytes[0], 2_000_000);
        assert_eq!(report.fcts.len(), 1);
        assert!(report.faults_injected >= 2, "down + up events");
        assert!(
            report.fcts[0].fct_s > 2_000_000.0 * 8.0 / 5e9,
            "the outage must slow the flow"
        );
    }

    #[test]
    fn fault_cnp_loss_spares_data() {
        let (topo, senders, receiver) = Topology::single_switch(2, 10e9, us(1));
        let mut cfg = EngineConfig::default();
        // Drop every CNP on the receiver's uplink; data is untouched.
        cfg.faults = Some(faults::FaultSchedule::new(3).cnp_loss(0.0, 2 * 2, 1.0, 1.0));
        let mut eng = Engine::new(topo, cfg);
        eng.add_flow(flow(senders[0], receiver, 1_000_000, 8e9));
        eng.add_flow(flow(senders[1], receiver, 1_000_000, 8e9));
        let report = eng.run(SimTime::from_millis(20));
        assert_eq!(report.delivered_bytes[0], 1_000_000);
        assert_eq!(report.delivered_bytes[1], 1_000_000);
        assert!(report.cnps_sent > 0, "overload still generates CNPs");
        assert!(report.fault_drops > 0, "all CNPs on the uplink are dropped");
    }

    #[test]
    fn fault_pause_storm_stalls_then_recovers() {
        let (topo, senders, receiver) = Topology::single_switch(1, 10e9, us(1));
        let mut cfg = EngineConfig::default();
        cfg.faults = Some(faults::FaultSchedule::new(11).pause_storm(
            0.001,
            bottleneck_link(1),
            200e-6,
            0.5,
            0.004,
        ));
        let mut eng = Engine::new(topo, cfg);
        eng.add_flow(flow(senders[0], receiver, 2_000_000, 8e9));
        let report = eng.run(SimTime::from_millis(30));
        assert!(report.fault_pauses > 0, "storm must pause the port");
        assert!(report.fault_paused_s > 0.0);
        assert_eq!(report.delivered_bytes[0], 2_000_000, "pauses are lossless");
    }

    #[test]
    fn fault_kmax_perturbation_increases_marking() {
        let run = |sched: Option<faults::FaultSchedule>| {
            let (topo, senders, receiver) = Topology::single_switch(2, 10e9, us(1));
            let mut cfg = EngineConfig::default();
            cfg.faults = sched;
            let mut eng = Engine::new(topo, cfg);
            eng.add_flow(flow(senders[0], receiver, 2_000_000, 8e9));
            eng.add_flow(flow(senders[1], receiver, 2_000_000, 8e9));
            eng.run(SimTime::from_millis(20)).marked_packets
        };
        let base = run(None);
        let perturbed = run(Some(faults::FaultSchedule::new(5).perturb(
            0.0,
            faults::ParamTarget::RedKmax,
            0.2,
        )));
        assert!(
            perturbed > base,
            "shrinking K_max must mark more: {perturbed} vs {base}"
        );
    }

    #[test]
    fn fault_jitter_slows_completion() {
        let run = |sched: Option<faults::FaultSchedule>| {
            let (topo, senders, receiver) = Topology::single_switch(1, 10e9, us(1));
            let mut cfg = EngineConfig::default();
            cfg.faults = sched;
            let mut eng = Engine::new(topo, cfg);
            eng.add_flow(flow(senders[0], receiver, 200_000, 5e9));
            eng.run(SimTime::from_millis(20)).fcts[0].fct_s
        };
        let base = run(None);
        let spiked = run(Some(faults::FaultSchedule::new(1).delay_spike(
            0.0,
            bottleneck_link(1),
            100e-6,
            1.0,
        )));
        assert!(
            spiked > base + 90e-6,
            "a 100 µs delay spike must show in the FCT: {spiked} vs {base}"
        );
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let run = || {
            let (topo, senders, receiver) = Topology::single_switch(2, 10e9, us(1));
            let mut cfg = EngineConfig::default();
            cfg.faults = Some(
                faults::FaultSchedule::new(21)
                    .packet_loss(0.001, bottleneck_link(2), 0.2, 0.01)
                    .rtt_jitter(0.002, 1, 20e-6, 0.01)
                    .pause_storm(0.004, bottleneck_link(2), 100e-6, 0.4, 0.003),
            );
            let mut eng = Engine::new(topo, cfg);
            eng.add_flow(flow(senders[0], receiver, 1_000_000, 8e9));
            eng.add_flow(flow(senders[1], receiver, 1_000_000, 8e9));
            let r = eng.run(SimTime::from_millis(30));
            (
                r.fault_drops,
                r.fault_pauses,
                r.faults_injected,
                r.marked_packets,
                r.delivered_bytes.clone(),
                r.fcts.iter().map(|f| f.fct_s.to_bits()).collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_fault_schedule_is_bit_identical_to_none() {
        let run = |sched: Option<faults::FaultSchedule>| {
            let (topo, senders, receiver) = Topology::single_switch(2, 10e9, us(1));
            let mut cfg = EngineConfig::default();
            cfg.faults = sched;
            let mut eng = Engine::new(topo, cfg);
            eng.add_flow(flow(senders[0], receiver, 800_000, 8e9));
            eng.add_flow(flow(senders[1], receiver, 800_000, 8e9));
            let r = eng.run(SimTime::from_millis(20));
            (
                r.marked_packets,
                r.cnps_sent,
                r.delivered_bytes.clone(),
                r.fcts.iter().map(|f| f.fct_s.to_bits()).collect::<Vec<_>>(),
            )
        };
        assert_eq!(
            run(None),
            run(Some(faults::FaultSchedule::new(99))),
            "an installed-but-empty fault plane must not perturb the run"
        );
    }

    #[test]
    fn try_add_flow_rejects_bad_endpoints() {
        let (topo, senders, receiver) = Topology::single_switch(1, 10e9, us(1));
        let switch = NodeId(2);
        let mut eng = Engine::new(topo, EngineConfig::default());
        let err = eng
            .try_add_flow(flow(senders[0], switch, 1_000, 1e9))
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidFlow { .. }), "{err}");
        let err = eng
            .try_add_flow(flow(receiver, receiver, 1_000, 1e9))
            .unwrap_err();
        assert!(err.to_string().contains("must differ"), "{err}");
    }

    #[test]
    fn try_run_rejects_empty_flow_set() {
        let (topo, _senders, _receiver) = Topology::single_switch(1, 10e9, us(1));
        let mut eng = Engine::new(topo, EngineConfig::default());
        let err = eng.try_run(SimTime::from_millis(1)).unwrap_err();
        assert!(err.to_string().contains("empty flow set"), "{err}");
    }

    #[test]
    fn engine_config_validate_rejects_bad_fields() {
        let check = |mutate: &dyn Fn(&mut EngineConfig), needle: &str| {
            let mut cfg = EngineConfig::default();
            mutate(&mut cfg);
            let err = cfg.validate().unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "expected {needle:?} in {err}"
            );
        };
        check(&|c| c.mtu_bytes = 0, "mtu_bytes");
        check(&|c| c.control_packet_bytes = 0, "control_packet_bytes");
        check(
            &|c| {
                c.red.kmin_bytes = 100;
                c.red.kmax_bytes = 50;
            },
            "kmin_bytes",
        );
        check(&|c| c.red.p_max = f64::NAN, "p_max");
        check(&|c| c.red.p_max = 1.5, "p_max");
        check(
            &|c| c.queue_trace_resolution_s = f64::INFINITY,
            "resolution",
        );
        check(
            &|c| {
                c.pfc = Some(PfcConfig {
                    pause_threshold_bytes: 10,
                    resume_threshold_bytes: 20,
                })
            },
            "resume",
        );
        assert!(EngineConfig::default().validate().is_ok());
    }

    #[test]
    fn run_rejects_schedule_with_out_of_range_link() {
        let (topo, senders, receiver) = Topology::single_switch(1, 10e9, us(1));
        let mut cfg = EngineConfig::default();
        cfg.faults = Some(faults::FaultSchedule::new(1).link_flap(0.0, 999, 0.001));
        let mut eng = Engine::new(topo, cfg);
        eng.add_flow(flow(senders[0], receiver, 1_000, 1e9));
        let err = eng.try_run(SimTime::from_millis(1)).unwrap_err();
        assert!(err.to_string().contains("link"), "{err}");
    }
}
