//! Switch and queue configuration: RED/ECN marking, marking point, PFC.

/// RED/ECN marking profile (the paper's Eq 3).
#[derive(Debug, Clone)]
pub struct RedConfig {
    /// Lower threshold in bytes: below this, never mark.
    pub kmin_bytes: u64,
    /// Upper threshold in bytes: between `kmin` and `kmax` the probability
    /// rises linearly to `p_max`; above `kmax`, every packet is marked.
    pub kmax_bytes: u64,
    /// Marking probability at `kmax`.
    pub p_max: f64,
}

impl RedConfig {
    /// DCQCN defaults from \[31\]: K_min = 5 KB, K_max = 200 KB, P_max = 1 %.
    pub fn dcqcn_default() -> Self {
        RedConfig {
            kmin_bytes: 5_000,
            kmax_bytes: 200_000,
            p_max: 0.01,
        }
    }

    /// Marking probability for an instantaneous queue of `q` bytes (Eq 3).
    pub fn probability(&self, q_bytes: u64) -> f64 {
        if q_bytes <= self.kmin_bytes {
            0.0
        } else if q_bytes <= self.kmax_bytes {
            (q_bytes - self.kmin_bytes) as f64 / (self.kmax_bytes - self.kmin_bytes) as f64
                * self.p_max
        } else {
            1.0
        }
    }
}

/// Where the marking decision reads the queue (paper §5.2 and Figure 17).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkingMode {
    /// Mark when the packet *departs*: the mark reflects the queue at that
    /// instant, so the feedback delay excludes queueing delay. This is how
    /// modern shared-buffer switches behave and the paper's recommended
    /// configuration.
    Egress,
    /// Mark when the packet *arrives* at the queue: the mark then sits in
    /// the queue behind earlier packets, adding the queueing delay to the
    /// control loop — the destabilizing variant of Figure 17.
    Ingress,
}

/// PFC (IEEE 802.1Qbb) PAUSE/RESUME emulation. The paper assumes ECN fires
/// before PFC and ignores it; this is an optional extension, default off.
#[derive(Debug, Clone)]
pub struct PfcConfig {
    /// Ingress-buffer occupancy (bytes) above which PAUSE is sent upstream.
    pub pause_threshold_bytes: u64,
    /// Occupancy below which RESUME is sent.
    pub resume_threshold_bytes: u64,
}

impl PfcConfig {
    /// A typical headroom configuration relative to the RED thresholds:
    /// pause well above `K_max` so ECN acts first.
    pub fn above_red(red: &RedConfig) -> Self {
        PfcConfig {
            pause_threshold_bytes: red.kmax_bytes * 4,
            resume_threshold_bytes: red.kmax_bytes * 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn red_probability_profile() {
        let red = RedConfig::dcqcn_default();
        assert_eq!(red.probability(0), 0.0);
        assert_eq!(red.probability(5_000), 0.0);
        let mid = red.probability(102_500);
        assert!((mid - 0.005).abs() < 1e-12, "mid = {mid}");
        assert!((red.probability(200_000) - 0.01).abs() < 1e-12);
        assert_eq!(red.probability(200_001), 1.0);
    }

    #[test]
    fn red_monotone() {
        let red = RedConfig::dcqcn_default();
        let mut prev = -1.0;
        for q in (0..300_000).step_by(1_000) {
            let p = red.probability(q);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn pfc_thresholds_above_red() {
        let red = RedConfig::dcqcn_default();
        let pfc = PfcConfig::above_red(&red);
        assert!(pfc.pause_threshold_bytes > red.kmax_bytes);
        assert!(pfc.resume_threshold_bytes < pfc.pause_threshold_bytes);
    }
}

/// PI-controller AQM (the paper's §5.2 proposal, \[14\]-style): the marking
/// probability is an explicit controller state driven by the queue error,
/// updated every `update_interval`. With PI marking, DCQCN achieves a
/// queue pinned at `q_ref` *and* fairness, for any number of flows —
/// Figure 18 at the packet level (the paper ran it in the fluid model and
/// lists a hardware implementation as future work).
#[derive(Debug, Clone)]
pub struct PiAqmConfig {
    /// Queue reference in bytes.
    pub q_ref_bytes: u64,
    /// Coefficient `a` of the discrete PI update
    /// `p += a·(q − q_ref) − b·(q_old − q_ref)` (per byte).
    pub a_per_byte: f64,
    /// Coefficient `b` (per byte).
    pub b_per_byte: f64,
    /// Controller update interval.
    pub update_interval: desim::SimDuration,
}

impl PiAqmConfig {
    /// Gains matched to the fluid-model PI of `models::pi` (k1 = 5e-5/pkt,
    /// k2 = 5e-3/pkt·s at 1 KB packets), discretized at 55 µs.
    pub fn default_for(q_ref_bytes: u64) -> Self {
        let k1_per_byte = 5e-5 / 1000.0;
        let k2_per_byte_s = 5e-3 / 1000.0;
        let t = 55e-6;
        PiAqmConfig {
            q_ref_bytes,
            a_per_byte: k1_per_byte + k2_per_byte_s * t,
            b_per_byte: k1_per_byte,
            update_interval: desim::SimDuration::from_micros(55),
        }
    }
}
