//! The DCQCN reaction point (sender) state machine.
//!
//! Behaviour per \[31\] §3 as summarized in the paper's §3: on CNP the sender
//! cuts (Eq 1) at most once per `rate_decrease_interval`; without feedback
//! for `τ'` the α estimator decays (Eq 2); rate recovery is driven by two
//! independent event sources — a byte counter (every `B` transmitted bytes)
//! and a timer (every `T`) — through five "fast recovery" stages that halve
//! the gap to the target rate, then additive increase of `R_AI` (and
//! optionally hyper increase once both sources pass `F` stages).

use desim::{SimDuration, SimTime};
use netsim::cc::{CcEvent, CcUpdate, CongestionControl};

/// Timer kinds used with the engine.
const TIMER_ALPHA: u8 = 0;
const TIMER_INCREASE: u8 = 1;

/// DCQCN RP parameters (defaults from \[31\], as used throughout the paper).
#[derive(Debug, Clone)]
pub struct DcqcnCcParams {
    /// DCTCP gain `g` (Eq 1): 1/256.
    pub g: f64,
    /// Additive increase step `R_AI` in bps (40 Mbps).
    pub r_ai_bps: f64,
    /// Hyper increase step `R_HAI` in bps (used only if `enable_hyper`).
    pub r_hai_bps: f64,
    /// Enable the hyper-increase phase. The paper's analysis omits it
    /// ("we omit hyper-increase"), so the default is off for fluid-model
    /// comparability; real NICs enable it.
    pub enable_hyper: bool,
    /// α-decay interval `τ'` (55 µs).
    pub alpha_timer: SimDuration,
    /// Rate-increase timer `T` (55 µs).
    pub increase_timer: SimDuration,
    /// Byte counter `B` (10 MB).
    pub byte_counter_bytes: u64,
    /// Fast recovery stages `F` (5).
    pub fast_recovery_steps: u32,
    /// Minimum interval between rate cuts (the CNP timer τ, 50 µs: the NP
    /// coalesces, and the RP also reacts at most once per window).
    pub rate_decrease_interval: SimDuration,
    /// Rate floor in bps.
    pub min_rate_bps: f64,
}

impl Default for DcqcnCcParams {
    fn default() -> Self {
        DcqcnCcParams {
            g: 1.0 / 256.0,
            r_ai_bps: 40e6,
            r_hai_bps: 200e6,
            enable_hyper: false,
            alpha_timer: SimDuration::from_micros(55),
            increase_timer: SimDuration::from_micros(55),
            byte_counter_bytes: 10_000_000,
            fast_recovery_steps: 5,
            rate_decrease_interval: SimDuration::from_micros(50),
            min_rate_bps: 10e6,
        }
    }
}

/// The DCQCN RP.
///
/// ```
/// use desim::SimTime;
/// use netsim::cc::{CcEvent, CongestionControl};
/// use protocols::DcqcnCc;
///
/// let mut rp = DcqcnCc::default_cc();
/// rp.on_start(SimTime::ZERO, 10e9);          // line rate, no slow start
/// assert_eq!(rp.current_rate_bps(), 10e9);
/// let up = rp.on_event(SimTime::from_micros(100), CcEvent::Cnp);
/// assert_eq!(up.new_rate_bps, Some(5e9));     // α = 1 ⇒ cut by half (Eq 1)
/// ```
#[derive(Debug, Clone)]
pub struct DcqcnCc {
    /// Parameters.
    pub params: DcqcnCcParams,
    rc: f64,
    rt: f64,
    alpha: f64,
    line_rate_bps: f64,
    byte_stage: u32,
    time_stage: u32,
    bytes_since_stage: u64,
    last_cut: Option<SimTime>,
    cuts: u64,
    increases: u64,
}

impl DcqcnCc {
    /// New RP with the given parameters.
    pub fn new(params: DcqcnCcParams) -> Self {
        DcqcnCc {
            params,
            rc: 0.0,
            rt: 0.0,
            alpha: 1.0,
            line_rate_bps: 0.0,
            byte_stage: 0,
            time_stage: 0,
            bytes_since_stage: 0,
            last_cut: None,
            cuts: 0,
            increases: 0,
        }
    }

    /// Default-configured RP.
    pub fn default_cc() -> Self {
        Self::new(DcqcnCcParams::default())
    }

    /// Current α (tests/tracing).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Current target rate (tests/tracing).
    pub fn target_rate_bps(&self) -> f64 {
        self.rt
    }

    /// Number of rate cuts performed.
    pub fn cuts(&self) -> u64 {
        self.cuts
    }

    /// One rate-increase event from either the byte counter or the timer
    /// (QCN semantics shared by both sources).
    fn increase_event(&mut self) {
        self.increases += 1;
        obs::metrics::counter_inc("dcqcn.increases");
        let f = self.params.fast_recovery_steps;
        if self.byte_stage < f && self.time_stage < f {
            // Fast recovery: halve the gap to the target.
        } else if self.params.enable_hyper && self.byte_stage > f && self.time_stage > f {
            self.rt = (self.rt + self.params.r_hai_bps).min(self.line_rate_bps);
        } else {
            self.rt = (self.rt + self.params.r_ai_bps).min(self.line_rate_bps);
        }
        self.rc = ((self.rc + self.rt) / 2.0).clamp(self.params.min_rate_bps, self.line_rate_bps);
    }

    fn cut(&mut self, now: SimTime) {
        self.cuts += 1;
        obs::metrics::counter_inc("dcqcn.cuts");
        self.rt = self.rc;
        self.rc = (self.rc * (1.0 - self.alpha / 2.0)).max(self.params.min_rate_bps);
        self.alpha = (1.0 - self.params.g) * self.alpha + self.params.g;
        desim::invariants::unit_interval("dcqcn cut alpha", self.alpha);
        self.byte_stage = 0;
        self.time_stage = 0;
        self.bytes_since_stage = 0;
        self.last_cut = Some(now);
    }
}

impl CongestionControl for DcqcnCc {
    fn on_start(&mut self, now: SimTime, line_rate_bps: f64) -> CcUpdate {
        self.line_rate_bps = line_rate_bps;
        self.rc = line_rate_bps; // start at line rate, no slow start
        self.rt = line_rate_bps;
        self.alpha = 1.0;
        CcUpdate::rate(self.rc)
            .with_timer(TIMER_ALPHA, now + self.params.alpha_timer)
            .with_timer(TIMER_INCREASE, now + self.params.increase_timer)
    }

    fn on_event(&mut self, now: SimTime, event: CcEvent) -> CcUpdate {
        match event {
            CcEvent::Cnp => {
                let due = match self.last_cut {
                    None => true,
                    Some(t) => now.saturating_since(t) >= self.params.rate_decrease_interval,
                };
                if !due {
                    return CcUpdate::none();
                }
                self.cut(now);
                // A CNP resets both recovery clocks: the α-timer restarts
                // (feedback was just received) and the increase timer
                // restarts its period.
                CcUpdate::rate(self.rc)
                    .with_timer(TIMER_ALPHA, now + self.params.alpha_timer)
                    .with_timer(TIMER_INCREASE, now + self.params.increase_timer)
            }
            CcEvent::Timer { kind: TIMER_ALPHA } => {
                // Eq 2: no feedback for τ' → α decays.
                self.alpha *= 1.0 - self.params.g;
                desim::invariants::unit_interval("dcqcn decay alpha", self.alpha);
                CcUpdate::none().with_timer(TIMER_ALPHA, now + self.params.alpha_timer)
            }
            CcEvent::Timer {
                kind: TIMER_INCREASE,
            } => {
                self.time_stage += 1;
                self.increase_event();
                CcUpdate::rate(self.rc).with_timer(TIMER_INCREASE, now + self.params.increase_timer)
            }
            CcEvent::SentBytes { bytes } => {
                self.bytes_since_stage += bytes;
                let mut changed = false;
                while self.bytes_since_stage >= self.params.byte_counter_bytes {
                    self.bytes_since_stage -= self.params.byte_counter_bytes;
                    self.byte_stage += 1;
                    self.increase_event();
                    changed = true;
                }
                if changed {
                    CcUpdate::rate(self.rc)
                } else {
                    CcUpdate::none()
                }
            }
            CcEvent::RttSample { .. } | CcEvent::Timer { .. } => CcUpdate::none(),
        }
    }

    fn current_rate_bps(&self) -> f64 {
        self.rc
    }

    fn perturb(&mut self, target: faults::ParamTarget, scale: f64) {
        // Fault-plane knob: R_AI is the paper's additive-increase step; the
        // fault matrices scale it mid-run to probe recovery sensitivity.
        if matches!(target, faults::ParamTarget::CcRateIncrease) {
            self.params.r_ai_bps *= scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn started(line: f64) -> DcqcnCc {
        let mut cc = DcqcnCc::default_cc();
        cc.on_start(SimTime::ZERO, line);
        cc
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn starts_at_line_rate_with_alpha_one() {
        let mut cc = DcqcnCc::default_cc();
        let up = cc.on_start(SimTime::ZERO, 10e9);
        assert_eq!(up.new_rate_bps, Some(10e9));
        assert_eq!(cc.alpha(), 1.0);
        assert_eq!(up.timers.len(), 2, "α timer and increase timer armed");
    }

    #[test]
    fn cnp_cut_follows_eq1() {
        let mut cc = started(10e9);
        let up = cc.on_event(t(100), CcEvent::Cnp);
        // α was 1 → cut by 1 − 1/2 = 0.5.
        assert_eq!(up.new_rate_bps, Some(5e9));
        assert_eq!(cc.target_rate_bps(), 10e9, "target remembers pre-cut rate");
        let g = 1.0 / 256.0;
        assert!((cc.alpha() - ((1.0 - g) * 1.0 + g)).abs() < 1e-12);
    }

    #[test]
    fn cuts_rate_limited_to_one_per_interval() {
        let mut cc = started(10e9);
        cc.on_event(t(100), CcEvent::Cnp);
        let r_after_first = cc.current_rate_bps();
        // Second CNP 10 µs later: inside the 50 µs window, ignored.
        let up = cc.on_event(t(110), CcEvent::Cnp);
        assert!(up.new_rate_bps.is_none());
        assert_eq!(cc.current_rate_bps(), r_after_first);
        // After the window, a new cut is honoured.
        cc.on_event(t(160), CcEvent::Cnp);
        assert!(cc.current_rate_bps() < r_after_first);
        assert_eq!(cc.cuts(), 2);
    }

    #[test]
    fn alpha_decays_without_feedback() {
        let mut cc = started(10e9);
        cc.on_event(t(100), CcEvent::Cnp);
        let a0 = cc.alpha();
        for k in 1..=10 {
            cc.on_event(t(100 + 55 * k), CcEvent::Timer { kind: TIMER_ALPHA });
        }
        let g: f64 = 1.0 / 256.0;
        let expect = a0 * (1.0 - g).powi(10);
        assert!((cc.alpha() - expect).abs() < 1e-12);
    }

    #[test]
    fn fast_recovery_halves_gap_five_times() {
        let mut cc = started(10e9);
        cc.on_event(t(100), CcEvent::Cnp); // rc = 5G, rt = 10G
        let mut expect = 5e9;
        for k in 1..=5 {
            cc.on_event(
                t(100 + 55 * k),
                CcEvent::Timer {
                    kind: TIMER_INCREASE,
                },
            );
            expect = (expect + 10e9) / 2.0;
            assert!(
                (cc.current_rate_bps() - expect).abs() < 1.0,
                "stage {k}: {} vs {expect}",
                cc.current_rate_bps()
            );
            // Target untouched during fast recovery.
            assert_eq!(cc.target_rate_bps(), 10e9);
        }
    }

    #[test]
    fn additive_increase_after_fast_recovery() {
        let mut cc = started(10e9);
        cc.on_event(t(100), CcEvent::Cnp);
        // Exhaust fast recovery via the timer.
        for k in 1..=5 {
            cc.on_event(
                t(100 + 55 * k),
                CcEvent::Timer {
                    kind: TIMER_INCREASE,
                },
            );
        }
        let rt_before = cc.target_rate_bps();
        cc.on_event(
            t(100 + 55 * 6),
            CcEvent::Timer {
                kind: TIMER_INCREASE,
            },
        );
        // Target is capped at line rate (was already there), so stays; use a
        // lower operating point to see the increment.
        assert!(cc.target_rate_bps() <= 10e9);
        let _ = rt_before;

        // Drive the rate down with repeated cuts, then verify R_AI steps.
        let mut cc = started(10e9);
        for k in 0..20 {
            cc.on_event(t(1000 + 60 * k), CcEvent::Cnp);
        }
        for k in 1..=5 {
            cc.on_event(
                t(10_000 + 55 * k),
                CcEvent::Timer {
                    kind: TIMER_INCREASE,
                },
            );
        }
        let rt0 = cc.target_rate_bps();
        cc.on_event(
            t(10_000 + 55 * 6),
            CcEvent::Timer {
                kind: TIMER_INCREASE,
            },
        );
        assert!(
            (cc.target_rate_bps() - (rt0 + 40e6)).abs() < 1.0,
            "R_AI step: {} vs {}",
            cc.target_rate_bps(),
            rt0 + 40e6
        );
    }

    #[test]
    fn byte_counter_drives_stages() {
        let mut cc = started(10e9);
        cc.on_event(t(100), CcEvent::Cnp);
        let r0 = cc.current_rate_bps();
        // 10 MB transmitted → one byte-counter stage.
        let up = cc.on_event(t(200), CcEvent::SentBytes { bytes: 10_000_000 });
        assert!(up.new_rate_bps.is_some());
        assert!(cc.current_rate_bps() > r0, "fast recovery via byte counter");
        // Partial accumulation does nothing.
        let up = cc.on_event(t(300), CcEvent::SentBytes { bytes: 1_000 });
        assert!(up.new_rate_bps.is_none());
    }

    #[test]
    fn multiple_byte_stages_in_one_batch() {
        let mut cc = started(10e9);
        cc.on_event(t(100), CcEvent::Cnp);
        let r0 = cc.current_rate_bps();
        cc.on_event(t(200), CcEvent::SentBytes { bytes: 30_000_000 });
        // Three stages of fast recovery: gap shrinks by 7/8.
        let expect = 10e9 - (10e9 - r0) / 8.0;
        assert!(
            (cc.current_rate_bps() - expect).abs() < 1.0,
            "{} vs {expect}",
            cc.current_rate_bps()
        );
    }

    #[test]
    fn hyper_increase_when_enabled() {
        let mut params = DcqcnCcParams::default();
        params.enable_hyper = true;
        let mut cc = DcqcnCc::new(params);
        cc.on_start(SimTime::ZERO, 40e9);
        // Cut deeply so there is headroom.
        for k in 0..30 {
            cc.on_event(t(100 + 60 * k), CcEvent::Cnp);
        }
        // Pass F stages on both clocks.
        for k in 1..=6 {
            cc.on_event(
                t(10_000 + 55 * k),
                CcEvent::Timer {
                    kind: TIMER_INCREASE,
                },
            );
        }
        cc.on_event(t(11_000), CcEvent::SentBytes { bytes: 60_000_000 });
        let rt0 = cc.target_rate_bps();
        cc.on_event(
            t(11_000 + 55),
            CcEvent::Timer {
                kind: TIMER_INCREASE,
            },
        );
        let step = cc.target_rate_bps() - rt0;
        assert!(
            (step - 200e6).abs() < 1.0,
            "hyper step should be R_HAI: {step}"
        );
    }

    #[test]
    fn rate_never_below_floor_or_above_line() {
        let mut cc = started(10e9);
        for k in 0..500 {
            cc.on_event(t(100 + 60 * k), CcEvent::Cnp);
        }
        assert!(cc.current_rate_bps() >= cc.params.min_rate_bps);
        for k in 0..10_000u64 {
            cc.on_event(
                t(100_000 + 55 * k),
                CcEvent::Timer {
                    kind: TIMER_INCREASE,
                },
            );
        }
        assert!(cc.current_rate_bps() <= 10e9);
        assert!(cc.target_rate_bps() <= 10e9);
    }
}
