//! Patched TIMELY (the paper's Algorithm 2).
//!
//! Identical to TIMELY outside the gradient band; inside it, the update is
//!
//! ```text
//! weight ← w(rttGradient)                (Eq 30: 0 below −1/4, 2g+1/2, 1 above 1/4)
//! error  ← (newRTT − RTT_ref)/RTT_ref
//! rate   ← δ·(1 − weight) + rate·(1 − β·weight·error)
//! ```
//!
//! with `β = 0.008` and 16 KB segments. The absolute-RTT error term gives
//! every flow knowledge of the common queue, which is what buys the unique
//! fair fixed point (Theorem 5).

use crate::timely::TimelyCcParams;
use desim::{SimDuration, SimTime};
use netsim::cc::{CcEvent, CcUpdate, CongestionControl};

/// Patched-TIMELY parameters: the TIMELY set plus `RTT_ref`.
#[derive(Debug, Clone)]
pub struct PatchedTimelyCcParams {
    /// Base TIMELY parameters (β and Seg are overridden by
    /// [`PatchedTimelyCcParams::default`] to the paper's patched values).
    pub base: TimelyCcParams,
    /// Reference RTT (the paper sets the reference queue to `C·T_low`,
    /// i.e. `RTT_ref = T_low` of queueing delay).
    pub rtt_ref: SimDuration,
}

impl Default for PatchedTimelyCcParams {
    fn default() -> Self {
        let mut base = TimelyCcParams::default();
        base.beta = 0.008;
        base.seg_bytes = 16_000;
        // HAI is irrelevant inside the continuous-weight band; keep the
        // TIMELY default for the outer regions.
        PatchedTimelyCcParams {
            base,
            rtt_ref: SimDuration::from_micros(50),
        }
    }
}

/// The weight function `w(g)` of Eq 30.
pub fn weight(g: f64) -> f64 {
    if g <= -0.25 {
        0.0
    } else if g >= 0.25 {
        1.0
    } else {
        2.0 * g + 0.5
    }
}

/// The Patched TIMELY sender.
#[derive(Debug, Clone)]
pub struct PatchedTimelyCc {
    /// Parameters.
    pub params: PatchedTimelyCcParams,
    rate_bps: f64,
    line_rate_bps: f64,
    prev_rtt_s: Option<f64>,
    rtt_diff_s: f64,
    samples: u64,
}

impl PatchedTimelyCc {
    /// New sender.
    pub fn new(params: PatchedTimelyCcParams) -> Self {
        PatchedTimelyCc {
            params,
            rate_bps: 0.0,
            line_rate_bps: 0.0,
            prev_rtt_s: None,
            rtt_diff_s: 0.0,
            samples: 0,
        }
    }

    /// Default-configured sender.
    pub fn default_cc() -> Self {
        Self::new(PatchedTimelyCcParams::default())
    }

    /// Number of samples processed.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Normalized gradient (tests).
    pub fn gradient(&self) -> f64 {
        self.rtt_diff_s / self.params.base.min_rtt.as_secs_f64()
    }

    /// Process one sample (Algorithm 2).
    pub fn update(&mut self, raw_rtt: SimDuration) -> f64 {
        self.samples += 1;
        let p = &self.params.base;
        let self_ser = SimDuration::serialization(p.seg_bytes as u64, self.line_rate_bps.max(1e3));
        let new_rtt = raw_rtt.as_secs_f64().max(self_ser.as_secs_f64()) - self_ser.as_secs_f64();

        let new_rtt_diff = match self.prev_rtt_s {
            Some(prev) => new_rtt - prev,
            None => 0.0,
        };
        self.prev_rtt_s = Some(new_rtt);
        self.rtt_diff_s = (1.0 - p.ewma_alpha) * self.rtt_diff_s + p.ewma_alpha * new_rtt_diff;
        let gradient = self.rtt_diff_s / p.min_rtt.as_secs_f64();

        if new_rtt < p.t_low.as_secs_f64() {
            self.rate_bps += p.delta_bps;
        } else if new_rtt > p.t_high.as_secs_f64() {
            self.rate_bps *= 1.0 - p.beta * (1.0 - p.t_high.as_secs_f64() / new_rtt);
        } else {
            // Algorithm 2 lines 10–12.
            let w = weight(gradient);
            let error =
                (new_rtt - self.params.rtt_ref.as_secs_f64()) / self.params.rtt_ref.as_secs_f64();
            self.rate_bps = p.delta_bps * (1.0 - w) + self.rate_bps * (1.0 - p.beta * w * error);
        }
        self.rate_bps = self.rate_bps.clamp(p.min_rate_bps, self.line_rate_bps);
        self.rate_bps
    }
}

impl CongestionControl for PatchedTimelyCc {
    fn on_start(&mut self, _now: SimTime, line_rate_bps: f64) -> CcUpdate {
        self.line_rate_bps = line_rate_bps;
        self.rate_bps = (line_rate_bps / self.params.base.start_rate_divisor)
            .clamp(self.params.base.min_rate_bps, line_rate_bps);
        CcUpdate::rate(self.rate_bps)
    }

    fn on_event(&mut self, now: SimTime, event: CcEvent) -> CcUpdate {
        match event {
            CcEvent::RttSample { rtt } => {
                let new_rate = self.update(rtt);
                obs::metrics::counter_inc("patched_timely.gradient_samples");
                if obs::trace::enabled() {
                    obs::trace::record(
                        now.as_secs_f64(),
                        obs::Event::GradientSample {
                            gradient: self.gradient(),
                            rtt_s: rtt.as_secs_f64(),
                        },
                    );
                }
                CcUpdate::rate(new_rate)
            }
            _ => CcUpdate::none(),
        }
    }

    fn current_rate_bps(&self) -> f64 {
        self.rate_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    fn started() -> PatchedTimelyCc {
        let mut cc = PatchedTimelyCc::default_cc();
        cc.on_start(SimTime::ZERO, 10e9);
        cc
    }

    #[test]
    fn weight_matches_eq30() {
        assert_eq!(weight(-1.0), 0.0);
        assert_eq!(weight(0.0), 0.5);
        assert_eq!(weight(1.0), 1.0);
        assert!((weight(0.125) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn patched_defaults_override_beta_and_seg() {
        let p = PatchedTimelyCcParams::default();
        assert_eq!(p.base.beta, 0.008);
        assert_eq!(p.base.seg_bytes, 16_000);
        assert_eq!(p.rtt_ref, us(50));
    }

    #[test]
    fn above_reference_rtt_with_flat_gradient_decreases() {
        let mut cc = started();
        // Flat RTT at 200 µs (> RTT_ref = 50 µs): w(0) = 1/2 and error > 0,
        // so the blended update must push the rate down overall once the
        // additive (1−w)δ term is smaller than the decrease.
        cc.update(us(200));
        cc.update(us(200));
        let r0 = cc.current_rate_bps();
        cc.update(us(200));
        let r1 = cc.current_rate_bps();
        // error = (200−50)/50 = 3 → decrease factor 1 − 0.008·0.5·3 = 0.988
        // versus +δ/2 = +5 Mbps. At 5 Gbps the decrease dominates.
        assert!(r1 < r0, "{r1} vs {r0}");
    }

    #[test]
    fn below_reference_rtt_with_flat_gradient_increases() {
        let cc = started();
        // Keep samples inside the band but below RTT_ref? RTT_ref = T_low,
        // so "below reference" inside the band is impossible — instead a
        // small positive error at low rate: additive term wins.
        let mut p = PatchedTimelyCcParams::default();
        p.rtt_ref = us(200);
        let mut cc2 = PatchedTimelyCc::new(p);
        cc2.on_start(SimTime::ZERO, 10e9);
        cc2.update(us(100));
        cc2.update(us(100));
        let r0 = cc2.current_rate_bps();
        cc2.update(us(100)); // error < 0 → both terms push up
        assert!(cc2.current_rate_bps() > r0);
        let _ = cc;
    }

    #[test]
    fn fixed_point_of_algorithm2() {
        // At the fixed point: g = 0, w = 1/2, and
        // rate = δ/2 + rate(1 − β·error/2) ⇒ rate·β·error = δ.
        // Feed the consistent RTT and check the rate is stationary.
        let mut cc = started();
        let rate = 2e9;
        cc.rate_bps = rate;
        let p = &cc.params;
        let error = p.base.delta_bps / (rate * p.base.beta);
        let rtt_s = p.rtt_ref.as_secs_f64() * (1.0 + error);
        let seg_ser = 16_000.0 * 8.0 / 10e9;
        let sample = SimDuration::from_secs_f64(rtt_s + seg_ser);
        cc.update(sample);
        cc.update(sample);
        cc.update(sample);
        let drift = (cc.current_rate_bps() - rate).abs() / rate;
        assert!(drift < 1e-3, "fixed point drift {drift}");
    }

    #[test]
    fn outer_regions_match_timely() {
        let mut cc = started();
        let r0 = cc.current_rate_bps();
        cc.update(us(20)); // below T_low
        assert!((cc.current_rate_bps() - (r0 + 10e6)).abs() < 1.0);
        let r1 = cc.current_rate_bps();
        cc.update(us(5_000)); // far above T_high
                              // With the patched β = 0.008, the decrease factor is
                              // 1 − 0.008·(1 − T_high/rtt) ≈ 0.9928.
        let rtt = 5_000e-6 - 16_000.0 * 8.0 / 10e9;
        let expect = r1 * (1.0 - 0.008 * (1.0 - 500e-6 / rtt));
        assert!(
            (cc.current_rate_bps() - expect).abs() / expect < 1e-6,
            "{} vs {expect}",
            cc.current_rate_bps()
        );
    }

    #[test]
    fn smooth_weight_avoids_on_off_jumps() {
        // Two nearly identical gradients must produce nearly identical
        // updates (the original TIMELY's indicator function makes a jump
        // at g = 0).
        let run = |g_init: f64| -> f64 {
            let mut cc = started();
            cc.rate_bps = 5e9;
            cc.prev_rtt_s = Some(100e-6);
            cc.rtt_diff_s = g_init * cc.params.base.min_rtt.as_secs_f64();
            // A sample equal to prev keeps the gradient ≈ current value
            // scaled by (1−α).
            let seg_ser = 16_000.0 * 8.0 / 10e9;
            cc.update(SimDuration::from_secs_f64(100e-6 + seg_ser));
            cc.current_rate_bps()
        };
        let below = run(-1e-4);
        let above = run(1e-4);
        let jump = (below - above).abs();
        assert!(
            jump < 1e6,
            "update must be continuous across g = 0, jump = {jump}"
        );
    }
}
