//! # protocols — DCQCN, TIMELY and Patched TIMELY endpoints
//!
//! Packet-level implementations of the three protocols analyzed in the
//! paper, as [`netsim::CongestionControl`] state machines:
//!
//! * [`dcqcn`] — the RP (reaction point) of \[31\]: CNP-driven multiplicative
//!   decrease with the DCTCP-style α estimator (Eqs 1–2), QCN-style
//!   recovery through five fast-recovery stages driven by both a byte
//!   counter and a timer, additive increase `R_AI`, optional hyper
//!   increase. Flows start at line rate ("DCQCN does not have slow start");
//! * [`timely`] — Algorithm 1 of \[21\]: per-completion RTT samples, EWMA RTT
//!   gradient, additive increase below `T_low` / on non-positive gradient,
//!   gradient-proportional multiplicative decrease, absolute backoff above
//!   `T_high`, plus the hyperactive-increase (HAI) mode;
//! * [`patched_timely`] — the paper's Algorithm 2: same shell as TIMELY but
//!   with the continuous weight `w(g)` and an absolute-RTT error term
//!   against `RTT_ref` in the gradient band.
//!
//! The NP (CNP coalescing with timer τ) and CP (RED marking at egress) live
//! in `netsim`, mirroring where those functions run in real deployments
//! (receiver NIC and switch respectively).

#![deny(missing_docs)]

pub mod dcqcn;
pub mod patched_timely;
pub mod timely;

pub use dcqcn::{DcqcnCc, DcqcnCcParams};
pub use patched_timely::{PatchedTimelyCc, PatchedTimelyCcParams};
pub use timely::{TimelyCc, TimelyCcParams};
