//! The TIMELY sender (Algorithm 1 of the paper, from \[21\]).
//!
//! One RTT sample arrives per completion event (chunk of 16–64 KB). The
//! sender maintains an EWMA of consecutive RTT differences, normalizes by
//! `D_minRTT` to get the gradient, and:
//!
//! * `newRTT < T_low` → additive increase `δ`;
//! * `newRTT > T_high` → multiplicative decrease `β·(1 − T_high/newRTT)`;
//! * otherwise gradient-based: `g ≤ 0` → `+δ` (with HAI after `N`
//!   consecutive non-positive gradients: `+N·δ`), else `×(1 − β·g)`.
//!
//! The engine's RTT sample is measured from the departure of the chunk's
//! first byte to the completion ACK, so it includes the chunk's own
//! serialization; TIMELY subtracts the ideal segment serialization time
//! (\[21\] §4.2), which we replicate via `seg_bytes`.

use desim::{SimDuration, SimTime};
use netsim::cc::{CcEvent, CcUpdate, CongestionControl};

/// TIMELY parameters (the paper's footnote 4 plus \[21\] defaults).
#[derive(Debug, Clone)]
pub struct TimelyCcParams {
    /// EWMA weight for the RTT difference filter.
    pub ewma_alpha: f64,
    /// Additive step `δ` in bps (10 Mbps).
    pub delta_bps: f64,
    /// Multiplicative decrease factor `β` (0.8).
    pub beta: f64,
    /// Low RTT threshold `T_low`.
    pub t_low: SimDuration,
    /// High RTT threshold `T_high`.
    pub t_high: SimDuration,
    /// Normalization constant `D_minRTT`.
    pub min_rtt: SimDuration,
    /// Segment size used to remove self-serialization from samples.
    pub seg_bytes: u32,
    /// Enable hyperactive increase (`N` consecutive non-positive gradients
    /// → `N·δ` steps, \[21\] Algorithm 1).
    pub enable_hai: bool,
    /// HAI threshold `N` (5).
    pub hai_n: u32,
    /// Rate floor in bps.
    pub min_rate_bps: f64,
    /// Initial rate divisor: a new flow starts at `line_rate / start_div`
    /// (the paper: `C/(N+1)` with N flows active; callers set this).
    // simlint: allow(unit-suffix) — dimensionless divisor of the line rate, not itself a rate
    pub start_rate_divisor: f64,
}

impl Default for TimelyCcParams {
    fn default() -> Self {
        TimelyCcParams {
            ewma_alpha: 0.875,
            delta_bps: 10e6,
            beta: 0.8,
            t_low: SimDuration::from_micros(50),
            t_high: SimDuration::from_micros(500),
            min_rtt: SimDuration::from_micros(20),
            seg_bytes: 16_000,
            enable_hai: true,
            hai_n: 5,
            min_rate_bps: 10e6,
            start_rate_divisor: 2.0,
        }
    }
}

/// The TIMELY sender state machine.
#[derive(Debug, Clone)]
pub struct TimelyCc {
    /// Parameters.
    pub params: TimelyCcParams,
    rate_bps: f64,
    line_rate_bps: f64,
    prev_rtt_s: Option<f64>,
    rtt_diff_s: f64,
    consecutive_negative: u32,
    samples: u64,
}

impl TimelyCc {
    /// New sender with the given parameters.
    pub fn new(params: TimelyCcParams) -> Self {
        TimelyCc {
            params,
            rate_bps: 0.0,
            line_rate_bps: 0.0,
            prev_rtt_s: None,
            rtt_diff_s: 0.0,
            consecutive_negative: 0,
            samples: 0,
        }
    }

    /// Default-configured sender.
    pub fn default_cc() -> Self {
        Self::new(TimelyCcParams::default())
    }

    /// Number of RTT samples consumed (tests).
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The current normalized gradient (tests).
    pub fn gradient(&self) -> f64 {
        self.rtt_diff_s / self.params.min_rtt.as_secs_f64()
    }

    /// Process one RTT sample (Algorithm 1); returns the new rate.
    pub fn update(&mut self, raw_rtt: SimDuration) -> f64 {
        self.samples += 1;
        let p = &self.params;
        // Remove the segment's own serialization at line rate.
        let self_ser = SimDuration::serialization(p.seg_bytes as u64, self.line_rate_bps.max(1e3));
        let new_rtt = raw_rtt.as_secs_f64().max(self_ser.as_secs_f64()) - self_ser.as_secs_f64();

        let new_rtt_diff = match self.prev_rtt_s {
            Some(prev) => new_rtt - prev,
            None => 0.0,
        };
        self.prev_rtt_s = Some(new_rtt);
        self.rtt_diff_s = (1.0 - p.ewma_alpha) * self.rtt_diff_s + p.ewma_alpha * new_rtt_diff;
        let gradient = self.rtt_diff_s / p.min_rtt.as_secs_f64();

        if new_rtt < p.t_low.as_secs_f64() {
            self.consecutive_negative = 0;
            self.rate_bps += p.delta_bps;
        } else if new_rtt > p.t_high.as_secs_f64() {
            self.consecutive_negative = 0;
            self.rate_bps *= 1.0 - p.beta * (1.0 - p.t_high.as_secs_f64() / new_rtt);
        } else if gradient <= 0.0 {
            self.consecutive_negative += 1;
            let steps = if p.enable_hai && self.consecutive_negative >= p.hai_n {
                p.hai_n as f64
            } else {
                1.0
            };
            self.rate_bps += steps * p.delta_bps;
        } else {
            self.consecutive_negative = 0;
            self.rate_bps *= 1.0 - p.beta * gradient.min(1.0);
        }
        self.rate_bps = self.rate_bps.clamp(p.min_rate_bps, self.line_rate_bps);
        self.rate_bps
    }
}

impl CongestionControl for TimelyCc {
    fn on_start(&mut self, _now: SimTime, line_rate_bps: f64) -> CcUpdate {
        self.line_rate_bps = line_rate_bps;
        self.rate_bps = (line_rate_bps / self.params.start_rate_divisor)
            .clamp(self.params.min_rate_bps, line_rate_bps);
        CcUpdate::rate(self.rate_bps)
    }

    fn on_event(&mut self, now: SimTime, event: CcEvent) -> CcUpdate {
        match event {
            CcEvent::RttSample { rtt } => {
                let new_rate = self.update(rtt);
                obs::metrics::counter_inc("timely.gradient_samples");
                if obs::trace::enabled() {
                    obs::trace::record(
                        now.as_secs_f64(),
                        obs::Event::GradientSample {
                            gradient: self.gradient(),
                            rtt_s: rtt.as_secs_f64(),
                        },
                    );
                }
                CcUpdate::rate(new_rate)
            }
            _ => CcUpdate::none(),
        }
    }

    fn current_rate_bps(&self) -> f64 {
        self.rate_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    fn started() -> TimelyCc {
        let mut cc = TimelyCc::default_cc();
        cc.on_start(SimTime::ZERO, 10e9);
        cc
    }

    #[test]
    fn starts_at_divided_line_rate() {
        let cc = started();
        assert_eq!(cc.current_rate_bps(), 5e9);
    }

    #[test]
    fn low_rtt_additive_increase() {
        let mut cc = started();
        let r0 = cc.current_rate_bps();
        // Below T_low (50 µs after serialization removal).
        cc.update(us(30));
        assert!((cc.current_rate_bps() - (r0 + 10e6)).abs() < 1.0);
    }

    #[test]
    fn high_rtt_multiplicative_decrease() {
        let mut cc = started();
        let r0 = cc.current_rate_bps();
        // Far above T_high → decrease toward (1 − β·(1 − T_high/rtt)).
        cc.update(us(2_000));
        let seg_ser = 16_000.0 * 8.0 / 10e9;
        let rtt = 2_000e-6 - seg_ser;
        let expect = r0 * (1.0 - 0.8 * (1.0 - 500e-6 / rtt));
        assert!(
            (cc.current_rate_bps() - expect).abs() < 1.0,
            "{} vs {expect}",
            cc.current_rate_bps()
        );
    }

    #[test]
    fn rising_rtt_in_band_decreases_rate() {
        let mut cc = started();
        // Establish a baseline inside the band, then a rising sample.
        cc.update(us(100));
        let r0 = cc.current_rate_bps();
        cc.update(us(200));
        assert!(cc.gradient() > 0.0);
        assert!(
            cc.current_rate_bps() < r0,
            "positive gradient must decrease"
        );
    }

    #[test]
    fn falling_rtt_in_band_increases_rate() {
        let mut cc = started();
        cc.update(us(300));
        cc.update(us(200));
        let r0 = cc.current_rate_bps();
        cc.update(us(150));
        assert!(cc.gradient() < 0.0);
        assert!(cc.current_rate_bps() > r0);
    }

    #[test]
    fn hai_quintuples_step_after_n_negative() {
        let mut cc = started();
        // Feed steadily falling in-band RTTs; after hai_n consecutive
        // non-positive gradients, the step becomes N·δ.
        let mut rtts = vec![400u64, 380, 360, 340, 320, 300, 280];
        rtts.reverse(); // pop() order
        let mut last_rate = cc.current_rate_bps();
        let mut steps = Vec::new();
        while let Some(r) = rtts.pop() {
            cc.update(us(r));
            steps.push(cc.current_rate_bps() - last_rate);
            last_rate = cc.current_rate_bps();
        }
        // Early steps are δ, the tail steps are 5δ.
        assert!((steps[1] - 10e6).abs() < 1.0, "early step {}", steps[1]);
        let last = *steps.last().unwrap();
        assert!((last - 50e6).abs() < 1.0, "HAI step {last}");
    }

    #[test]
    fn hai_disabled_keeps_single_delta() {
        let mut params = TimelyCcParams::default();
        params.enable_hai = false;
        let mut cc = TimelyCc::new(params);
        cc.on_start(SimTime::ZERO, 10e9);
        for r in [400u64, 380, 360, 340, 320, 300, 280, 260] {
            cc.update(us(r));
        }
        let r0 = cc.current_rate_bps();
        cc.update(us(240));
        assert!((cc.current_rate_bps() - (r0 + 10e6)).abs() < 1.0);
    }

    #[test]
    fn ewma_smooths_gradient() {
        let mut cc = started();
        cc.update(us(100));
        cc.update(us(100));
        assert!(cc.gradient().abs() < 1e-9, "flat RTT → zero gradient");
        cc.update(us(110));
        let g1 = cc.gradient();
        cc.update(us(110));
        let g2 = cc.gradient();
        assert!(g1 > 0.0 && g2 < g1, "gradient decays when RTT flattens");
    }

    #[test]
    fn rate_clamped_to_line_and_floor() {
        let mut cc = started();
        for _ in 0..10_000 {
            cc.update(us(10));
        }
        assert!(cc.current_rate_bps() <= 10e9);
        for _ in 0..10_000 {
            cc.update(us(100_000));
        }
        assert!(cc.current_rate_bps() >= cc.params.min_rate_bps);
    }
}
