//! # ecn-delay — umbrella crate
//!
//! Facade over the workspace crates so examples and downstream users can
//! reach every layer through one dependency:
//!
//! * [`desim`] — deterministic discrete-event kernel (time, events, RNG);
//! * [`fluid`] — ODE/DDE integrators with dense history;
//! * [`control`] — delayed-LTI stability analysis;
//! * [`models`] — the paper's fluid models (DCQCN, TIMELY, Patched TIMELY);
//! * [`netsim`] — the packet-level simulator;
//! * [`protocols`] — end-host congestion control over `netsim`;
//! * [`workload`] — flow-size distributions, arrivals, FCT metrics;
//! * [`experiments`] — the per-figure experiment layer (`ecn-delay-core`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use control;
pub use desim;
pub use ecn_delay_core as experiments;
pub use fluid;
pub use models;
pub use netsim;
pub use protocols;
pub use workload;
